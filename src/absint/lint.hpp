#pragma once

// Abstract-interpretation lint pass: diagnostics that need the
// reachable-region over-approximation R# (absint.hpp), complementing
// the per-expression exact passes of gcl/analyze.hpp. Lives in the
// absint module (not gcl/) so the gcl library stays independent of the
// analysis engine; gcl_lint and gcl_check merge these findings with
// analyze()'s under the --absint flag.
//
// Rules (ids in gcl/diag.hpp):
//   absint-unreachable-action  guard unsatisfiable in every box of R#
//                              (but satisfiable somewhere in Sigma —
//                              globally-dead actions stay with
//                              guard-always-false)
//   absint-guard-dead          the guard, or one of its top-level
//                              conjuncts, is surely true across R#: the
//                              test is dead weight in reachable states
//   absint-var-constant        a written variable holds one single
//                              value across R#
//   absint-init-not-closed     the init region is not closed under the
//                              actions (exact check with witness under
//                              the budget; "not provably closed" above)
//
// Everything here is quantified over R#, an OVER-approximation: a
// guard unsatisfiable within R# is truly unreachable from init, and a
// conjunct surely-true across R# is truly redundant — but both checks
// may miss instances the abstraction is too coarse to see.

#include <vector>

#include "absint/absint.hpp"
#include "gcl/diag.hpp"

namespace cref::absint {

struct AbsintLintOptions {
  AbsintOptions absint;
  /// Valuation cap for the exact init-closure check (counted over the
  /// full variable product, as in gcl::AnalyzeOptions::exact_budget).
  std::size_t exact_budget = std::size_t{1} << 20;
};

/// Runs all four rules. `result`, when non-null, receives the
/// fixpoint's R# so callers (gcl_check --absint) can reuse it without
/// re-analyzing. Findings are unsorted; merge with analyze()'s and
/// gcl::sort_diagnostics before rendering.
std::vector<gcl::Diagnostic> check_absint(const gcl::SystemAst& ast,
                                          const AbsintLintOptions& opts = {},
                                          AbsintResult* result = nullptr);

}  // namespace cref::absint
