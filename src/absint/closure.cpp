#include "absint/closure.hpp"

#include <stdexcept>
#include <utility>

#include "gcl/parser.hpp"
#include "gcl/pretty.hpp"

namespace cref::absint {
namespace {

/// gamma(post) is inside B when the box fits under one of the region's
/// boxes, or when B itself abstractly evaluates to surely-true on it.
/// Both are sufficient conditions; neither subsumes the other (the
/// region test sees disjuncts, the predicate test sees congruences the
/// region boxes may have joined away).
bool post_covered(const AbsBox& post, const AbsRegion& region,
                  const gcl::Expr& predicate) {
  for (const AbsBox& b : region.boxes) {
    if (post.leq(b)) return true;
  }
  return abs_eval(predicate, post).surely_true();
}

}  // namespace

std::optional<ClosureCertificate> make_closure_certificate(const gcl::SystemAst& ast,
                                                           const gcl::Expr& predicate) {
  std::vector<int> cards = cards_of(ast);
  ClosureCertificate cert;
  cert.predicate = gcl::print_expr(predicate);
  cert.region = region_from_predicate(ast, predicate);
  for (std::size_t bi = 0; bi < cert.region.boxes.size(); ++bi) {
    for (const auto& action : ast.actions) {
      ClosureObligation ob;
      ob.action = action.name;
      ob.box_index = bi;
      auto post = apply_action(cert.region.boxes[bi], action, cards);
      if (!post) {
        ob.vacuous = true;
      } else {
        if (!post_covered(*post, cert.region, predicate)) return std::nullopt;
        ob.post = std::move(*post);
      }
      cert.obligations.push_back(std::move(ob));
    }
  }
  return cert;
}

bool check_closure_certificate(const gcl::SystemAst& ast, const gcl::Expr& predicate,
                               const ClosureCertificate& cert) {
  std::vector<int> cards = cards_of(ast);
  AbsRegion expect = region_from_predicate(ast, predicate);
  if (expect.boxes != cert.region.boxes) return false;
  if (cert.obligations.size() != cert.region.boxes.size() * ast.actions.size())
    return false;
  std::size_t oi = 0;
  for (std::size_t bi = 0; bi < cert.region.boxes.size(); ++bi) {
    for (const auto& action : ast.actions) {
      const ClosureObligation& ob = cert.obligations[oi++];
      if (ob.action != action.name || ob.box_index != bi) return false;
      auto post = apply_action(cert.region.boxes[bi], action, cards);
      if (ob.vacuous != !post.has_value()) return false;
      if (!post) continue;
      if (ob.post != *post) return false;
      if (!post_covered(*post, cert.region, predicate)) return false;
    }
  }
  return true;
}

ClosedRegionCertificate to_closed_region_certificate(const Space& space,
                                                     const AbsRegion& region) {
  ClosedRegionCertificate cert;
  const StateId n = space.size();
  cert.members.assign(n, 0);
  StateVec decoded;
  for (StateId s = 0; s < n; ++s) {
    space.decode_into(s, decoded);
    if (region.contains(decoded)) cert.members[s] = 1;
  }
  return cert;
}

std::optional<gcl::Expr> parse_predicate(const gcl::SystemAst& ast,
                                         const std::string& text, std::string* error) {
  // Reuse the full parser by wrapping the predicate as the init clause
  // of a synthetic system with the same variable declarations, so name
  // resolution and domain checks match the original program's.
  std::string source = "system predicate_wrapper {\n";
  for (const auto& v : ast.vars) {
    source += "  var " + v.name + " : 0.." + std::to_string(v.cardinality - 1) + ";\n";
  }
  source += "  init : (" + text + ");\n}\n";
  try {
    gcl::SystemAst wrapper = gcl::parse(source);
    if (!wrapper.init) {
      if (error) *error = "predicate parsed to no init clause";
      return std::nullopt;
    }
    return std::move(*wrapper.init);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace cref::absint
