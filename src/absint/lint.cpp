#include "absint/lint.hpp"

#include <string>

#include "absint/closure.hpp"
#include "gcl/compile.hpp"
#include "gcl/pretty.hpp"

namespace cref::absint {

using gcl::Diagnostic;
using gcl::Rule;
using gcl::Severity;

namespace {

void collect_conjuncts(const gcl::Expr& e, std::vector<const gcl::Expr*>& out) {
  if (e.op == gcl::Op::And) {
    collect_conjuncts(e.children[0], out);
    collect_conjuncts(e.children[1], out);
  } else {
    out.push_back(&e);
  }
}

/// Guard satisfiable anywhere in the full domain product, abstractly.
bool guard_satisfiable_somewhere(const gcl::Expr& guard, const std::vector<int>& cards) {
  AbsBox box = AbsBox::top(cards);
  return refine_by_guard(box, guard, true);
}

/// Product of all cardinalities, saturating at cap + 1.
std::size_t full_valuation_count(const std::vector<int>& cards, std::size_t cap) {
  std::size_t p = 1;
  for (int c : cards) {
    p *= static_cast<std::size_t>(c);
    if (p > cap) return cap + 1;
  }
  return p;
}

std::string format_state(const gcl::SystemAst& ast, const StateVec& s) {
  std::string out;
  for (std::size_t i = 0; i < ast.vars.size(); ++i) {
    if (!out.empty()) out += ", ";
    out += ast.vars[i].name + "=" + std::to_string(s[i]);
  }
  return out;
}

/// Exact init-closure counterexample: a state satisfying init whose
/// post under some action does not. Enumerates the full product (the
/// caller has checked the budget).
struct ClosureViolation {
  std::string action;
  StateVec pre, post;
};

std::optional<ClosureViolation> find_exact_violation(const gcl::SystemAst& ast,
                                                     const std::vector<int>& cards) {
  StateVec s(cards.size(), 0), post(cards.size(), 0);
  while (true) {
    if (gcl::eval(*ast.init, s) != 0) {
      for (const auto& a : ast.actions) {
        if (gcl::eval(a.guard, s) == 0) continue;
        post = s;
        std::vector<std::int64_t> values;
        values.reserve(a.assignments.size());
        for (const auto& asg : a.assignments) values.push_back(gcl::eval(asg.value, s));
        for (std::size_t i = 0; i < a.assignments.size(); ++i) {
          std::size_t tgt = a.assignments[i].var_index;
          post[tgt] = static_cast<Value>(gcl::eval_mod(values[i], cards[tgt]));
        }
        if (post == s) continue;  // no-op executions are not transitions
        if (gcl::eval(*ast.init, post) == 0) return ClosureViolation{a.name, s, post};
      }
    }
    std::size_t k = 0;
    for (; k < cards.size(); ++k) {
      if (static_cast<int>(++s[k]) < cards[k]) break;
      s[k] = 0;
    }
    if (k == cards.size()) return std::nullopt;
  }
}

}  // namespace

std::vector<Diagnostic> check_absint(const gcl::SystemAst& ast,
                                     const AbsintLintOptions& opts,
                                     AbsintResult* result) {
  std::vector<Diagnostic> out;
  std::vector<int> cards = cards_of(ast);
  AbsintResult res = analyze_reachable(ast, opts.absint);
  if (result) *result = res;
  const AbsRegion& rs = res.region;
  // Unsatisfiable init has no reachable region; every per-action rule
  // would fire vacuously and only restate init-unsatisfiable.
  if (rs.is_bottom()) return out;

  // --- absint-unreachable-action / absint-guard-dead ------------------
  for (const auto& action : ast.actions) {
    bool fires_somewhere = false;
    for (const AbsBox& b : rs.boxes) {
      AbsBox pre = b;
      if (refine_by_guard(pre, action.guard, true)) {
        fires_somewhere = true;
        break;
      }
    }
    if (!fires_somewhere) {
      // Globally-dead actions are check_guards' guard-always-false.
      if (!guard_satisfiable_somewhere(action.guard, cards)) continue;
      out.push_back({Rule::AbsintUnreachableAction, Severity::Warning, action.loc,
                     "guard of action '" + action.name +
                         "' is unsatisfiable in every state reachable from init: "
                         "the action can never fire in an initialized run",
                     "the action only matters for fault recovery (runs started "
                     "outside init); if that is not intended, revisit the guard "
                     "or the init predicate"});
      continue;  // conjunct analysis over an unreachable guard is noise
    }
    std::vector<const gcl::Expr*> conjuncts;
    collect_conjuncts(action.guard, conjuncts);
    for (const gcl::Expr* c : conjuncts) {
      bool always_true = true;
      for (const AbsBox& b : rs.boxes) {
        if (!abs_eval(*c, b).surely_true()) {
          always_true = false;
          break;
        }
      }
      if (!always_true) continue;
      // A globally-tautological guard is check_guards' guard-always-true;
      // only reachability-dependent deadness is news.
      AbsBox top = AbsBox::top(cards);
      if (abs_eval(*c, top).surely_true()) continue;
      gcl::SourceLoc loc = c->loc.line ? c->loc : action.loc;
      std::string what = conjuncts.size() == 1
                             ? "guard of action '" + action.name + "'"
                             : "conjunct '" + gcl::print_expr(*c) + "' in the guard of "
                                   "action '" + action.name + "'";
      out.push_back({Rule::AbsintGuardDead, Severity::Note, loc,
                     what + " is always true in every state reachable from init",
                     "the test only matters for fault recovery; drop it if runs "
                     "always start in init"});
    }
  }

  // --- absint-var-constant --------------------------------------------
  std::vector<char> written(ast.vars.size(), 0);
  for (const auto& action : ast.actions) {
    for (const auto& asg : action.assignments) {
      if (asg.var_index < written.size()) written[asg.var_index] = 1;
    }
  }
  for (std::size_t i = 0; i < ast.vars.size(); ++i) {
    if (!written[i]) continue;  // unwritten vars are var-never-written
    bool constant = true;
    std::int64_t value = 0;
    for (std::size_t bi = 0; bi < rs.boxes.size() && constant; ++bi) {
      const AbsValue& v = rs.boxes[bi].vars[i];
      if (!v.is_constant() || (bi > 0 && v.iv.lo != value)) constant = false;
      value = v.iv.lo;
    }
    if (!constant) continue;
    out.push_back({Rule::AbsintVarConstant, Severity::Note, ast.vars[i].loc,
                   "variable '" + ast.vars[i].name + "' holds the single value " +
                       std::to_string(value) +
                       " in every state reachable from init, despite being assigned",
                   "its writers are unreachable or rewrite the same value; consider "
                   "folding it into a constant"});
  }

  // --- absint-init-not-closed -----------------------------------------
  if (ast.init) {
    if (full_valuation_count(cards, opts.exact_budget) <= opts.exact_budget) {
      if (auto v = find_exact_violation(ast, cards)) {
        out.push_back(
            {Rule::AbsintInitNotClosed, Severity::Warning, ast.init_loc,
             "init predicate is not closed under the actions: action '" + v->action +
                 "' leads from " + format_state(ast, v->pre) + " (in init) to " +
                 format_state(ast, v->post) + " (outside init)",
             "closure of the legitimate-state predicate is the precondition of the "
             "paper's Theorems 1 and 3; widen init to an invariant if it is meant "
             "to be one"});
      }
    } else if (!make_closure_certificate(ast, *ast.init)) {
      out.push_back({Rule::AbsintInitNotClosed, Severity::Note, ast.init_loc,
                     "init predicate is not provably closed under the actions "
                     "(state space too large for the exact check; the abstract "
                     "closure proof did not go through)",
                     "this may be abstraction coarseness rather than a real leak; "
                     "raise the budget or verify closure explicitly"});
    }
  }
  return out;
}

}  // namespace cref::absint
