#include "absint/domain.hpp"

#include <algorithm>
#include <array>
#include <numeric>

namespace cref::absint {
namespace {

std::int64_t clamp_inf(std::int64_t v) {
  return std::clamp(v, -kInf, kInf);
}

/// Mirrors gcl::eval_mod / gcl::eval_div (Euclidean pair, total at
/// b == 0). Duplicated here because the domain layer must not depend on
/// the gcl module; the transformer soundness tests cross-check the two.
std::int64_t euc_mod(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  std::int64_t r = a % b;
  return r < 0 ? r + (b > 0 ? b : -b) : r;
}

std::int64_t euc_div(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  return (a - euc_mod(a, b)) / b;
}

/// Congruence arithmetic works on moduli/remainders no larger than this
/// so intermediate products below stay far from int64 overflow; anything
/// bigger degrades to top (sound: top's gamma is everything).
constexpr std::int64_t kCgLimit = std::int64_t{1} << 30;

bool cg_oversized(const Congruence& c) {
  return std::abs(c.mod) > kCgLimit || std::abs(c.rem) > kCgLimit;
}

std::int64_t gcd3(std::int64_t a, std::int64_t b, std::int64_t c) {
  return std::gcd(std::gcd(a, b), c);
}

}  // namespace

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return clamp_inf(clamp_inf(a) + clamp_inf(b));
}

std::int64_t sat_sub(std::int64_t a, std::int64_t b) {
  return clamp_inf(clamp_inf(a) - clamp_inf(b));
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  a = clamp_inf(a);
  b = clamp_inf(b);
  if (a == 0 || b == 0) return 0;
  // |a|,|b| <= 2^40 so the product fits in __int128; clamp the result.
  __int128 p = static_cast<__int128>(a) * b;
  if (p > kInf) return kInf;
  if (p < -kInf) return -kInf;
  return static_cast<std::int64_t>(p);
}

// ---------------------------------------------------------------------------
// Interval

bool Interval::leq(const Interval& o) const {
  if (is_bottom()) return true;
  if (o.is_bottom()) return false;
  return o.lo <= lo && hi <= o.hi;
}

Interval Interval::join(const Interval& a, const Interval& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval Interval::meet(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};  // empty if disjoint
}

// ---------------------------------------------------------------------------
// Congruence

Congruence Congruence::residue(std::int64_t m, std::int64_t r) {
  m = std::abs(m);
  if (m == 0) return constant(r);
  if (m == 1) return top();
  return {m, euc_mod(r, m)};
}

bool Congruence::contains(std::int64_t v) const {
  if (is_top()) return true;
  if (is_constant()) return v == rem;
  return euc_mod(v, mod) == rem;
}

bool Congruence::leq(const Congruence& o) const {
  if (o.is_top()) return true;
  if (is_top()) return false;
  if (is_constant()) return o.contains(rem);
  if (o.is_constant()) return false;  // residue class vs singleton
  return mod % o.mod == 0 && euc_mod(rem, o.mod) == o.rem;
}

Congruence Congruence::join(const Congruence& a, const Congruence& b) {
  if (a.is_top() || b.is_top()) return top();
  if (cg_oversized(a) || cg_oversized(b)) return top();
  // Granger join: gcd of both moduli and the remainder gap.
  std::int64_t m = gcd3(a.mod, b.mod, std::abs(a.rem - b.rem));
  return residue(m, a.rem);
}

std::optional<Congruence> Congruence::meet(const Congruence& a, const Congruence& b) {
  if (a.is_top()) return b;
  if (b.is_top()) return a;
  if (a.is_constant()) {
    if (b.contains(a.rem)) return a;
    return std::nullopt;
  }
  if (b.is_constant()) {
    if (a.contains(b.rem)) return b;
    return std::nullopt;
  }
  std::int64_t g = std::gcd(a.mod, b.mod);
  if (euc_mod(a.rem - b.rem, g) != 0) return std::nullopt;
  std::int64_t lcm = a.mod / g * b.mod;
  if (lcm > kCgLimit) {
    // Exact CRT modulus too large to track; either operand is a sound
    // over-approximation of the intersection — keep the finer one.
    return a.mod >= b.mod ? a : b;
  }
  // CRT: walk candidates r = a.rem + k*a.mod; at most b.mod/g steps hit
  // every residue of the combined class (moduli here are protocol-sized).
  for (std::int64_t r = a.rem; r < lcm; r += a.mod) {
    if (euc_mod(r, b.mod) == b.rem) return residue(lcm, r);
  }
  return std::nullopt;  // unreachable given the gcd test, but safe
}

Congruence Congruence::add(const Congruence& a, const Congruence& b) {
  if (cg_oversized(a) || cg_oversized(b)) return top();
  return residue(std::gcd(a.mod, b.mod), a.rem + b.rem);
}

Congruence Congruence::sub(const Congruence& a, const Congruence& b) {
  if (cg_oversized(a) || cg_oversized(b)) return top();
  return residue(std::gcd(a.mod, b.mod), a.rem - b.rem);
}

Congruence Congruence::mul(const Congruence& a, const Congruence& b) {
  if (cg_oversized(a) || cg_oversized(b)) return top();
  // gamma(a)*gamma(b) = (r1 + i*m1)(r2 + j*m2) == r1*r2 modulo
  // gcd(m1*m2, m1*r2, m2*r1); operands are bounded by kCgLimit so the
  // products fit comfortably.
  std::int64_t m = gcd3(a.mod * b.mod, a.mod * b.rem, b.mod * a.rem);
  return residue(m, a.rem * b.rem);
}

Congruence Congruence::neg(const Congruence& a) {
  if (cg_oversized(a)) return top();
  return residue(a.mod, -a.rem);
}

// ---------------------------------------------------------------------------
// AbsValue

AbsValue AbsValue::reduced() const {
  if (iv.is_bottom()) return bottom();
  Interval i{clamp_inf(iv.lo), clamp_inf(iv.hi)};
  Congruence c = cg;
  if (c.is_constant()) {
    if (!i.contains(c.rem)) return bottom();
    i = Interval::point(c.rem);
  } else if (c.mod >= 2) {
    // Advance each endpoint to the nearest in-class member.
    std::int64_t lo = i.lo + euc_mod(c.rem - i.lo, c.mod);
    std::int64_t hi = i.hi - euc_mod(i.hi - c.rem, c.mod);
    if (lo > hi) return bottom();
    i = {lo, hi};
  }
  if (i.is_point()) c = Congruence::constant(i.lo);
  return {i, c};
}

bool AbsValue::leq(const AbsValue& o) const {
  if (is_bottom()) return true;
  if (o.is_bottom()) return false;
  return iv.leq(o.iv) && cg.leq(o.cg);
}

AbsValue AbsValue::join(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom()) return b.reduced();
  if (b.is_bottom()) return a.reduced();
  return AbsValue{Interval::join(a.iv, b.iv), Congruence::join(a.cg, b.cg)}.reduced();
}

AbsValue AbsValue::meet(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  auto c = Congruence::meet(a.cg, b.cg);
  if (!c) return bottom();
  return AbsValue{Interval::meet(a.iv, b.iv), *c}.reduced();
}

int AbsValue::count_in_domain(int card) const {
  if (is_bottom()) return 0;
  int n = 0;
  std::int64_t lo = std::max<std::int64_t>(iv.lo, 0);
  std::int64_t hi = std::min<std::int64_t>(iv.hi, card - 1);
  for (std::int64_t v = lo; v <= hi; ++v) {
    if (cg.contains(v)) ++n;
  }
  return n;
}

std::string AbsValue::format() const {
  if (is_bottom()) return "_|_";
  if (is_constant()) return "=" + std::to_string(iv.lo);
  std::string s = "[";
  s += std::to_string(iv.lo);
  s += "..";
  s += std::to_string(iv.hi);
  s += "]";
  if (cg.mod >= 2) {
    s += " mod";
    s += std::to_string(cg.mod);
    s += "=";
    s += std::to_string(cg.rem);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Abstract arithmetic

AbsValue abs_add(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  return AbsValue{{sat_add(a.iv.lo, b.iv.lo), sat_add(a.iv.hi, b.iv.hi)},
                  Congruence::add(a.cg, b.cg)}
      .reduced();
}

AbsValue abs_sub(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  return AbsValue{{sat_sub(a.iv.lo, b.iv.hi), sat_sub(a.iv.hi, b.iv.lo)},
                  Congruence::sub(a.cg, b.cg)}
      .reduced();
}

AbsValue abs_mul(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  std::array<std::int64_t, 4> p{sat_mul(a.iv.lo, b.iv.lo), sat_mul(a.iv.lo, b.iv.hi),
                                sat_mul(a.iv.hi, b.iv.lo), sat_mul(a.iv.hi, b.iv.hi)};
  auto [lo, hi] = std::minmax_element(p.begin(), p.end());
  return AbsValue{{*lo, *hi}, Congruence::mul(a.cg, b.cg)}.reduced();
}

AbsValue abs_neg(const AbsValue& a) {
  if (a.is_bottom()) return AbsValue::bottom();
  return AbsValue{{sat_sub(0, a.iv.hi), sat_sub(0, a.iv.lo)}, Congruence::neg(a.cg)}
      .reduced();
}

AbsValue abs_mod(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (b.is_constant()) {
    std::int64_t k = b.iv.lo;
    if (k == 0) return AbsValue::constant(0);  // total semantics
    std::int64_t m = std::abs(k);              // eval_mod(a, k) == euc_mod(a, |k|)
    if (a.iv.lo >= 0 && a.iv.hi < m) return a.reduced();  // identity range
    Congruence c = Congruence::top();
    if (a.cg.is_constant()) {
      c = Congruence::constant(euc_mod(a.cg.rem, m));
    } else if (!a.cg.is_top()) {
      if (a.cg.mod % m == 0) {
        // Every class member is rem plus a multiple of m.
        c = Congruence::constant(euc_mod(a.cg.rem, m));
      } else {
        // v == rem (mod g) survives reduction mod m for g = gcd(mod, m).
        c = Congruence::residue(std::gcd(a.cg.mod, m), a.cg.rem);
      }
    }
    return AbsValue{{0, m - 1}, c}.reduced();
  }
  // Unknown divisor: result lies in [0, max|b| - 1], or is 0 at b == 0.
  std::int64_t m = std::max(std::abs(b.iv.lo), std::abs(b.iv.hi));
  if (m == 0) return AbsValue::constant(0);
  return AbsValue::range(0, m - 1);
}

AbsValue abs_div(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  // Euclidean division is monotone in the dividend for a fixed divisor
  // and piecewise monotone in the divisor on each sign range, so over
  // the divisor's interval hull the extreme quotients occur at interval
  // endpoints or at divisor +/-1 (largest magnitude near zero). The
  // divisor's congruence is deliberately ignored here: pruning interior
  // candidates like +/-1 by residue class would require re-deriving the
  // nearest in-class member per sign to stay sound, and division is too
  // rare in protocols to warrant that precision.
  std::array<std::int64_t, 4> divisors{b.iv.lo, b.iv.hi, 1, -1};
  std::int64_t lo = kInf, hi = -kInf;
  bool any = false;
  for (std::int64_t d : divisors) {
    if (d == 0 || !b.iv.contains(d)) continue;
    for (std::int64_t n : {a.iv.lo, a.iv.hi}) {
      std::int64_t q = clamp_inf(euc_div(n, d));
      lo = std::min(lo, q);
      hi = std::max(hi, q);
      any = true;
    }
  }
  if (b.iv.contains(0)) {  // divisor zero contributes quotient 0
    lo = std::min<std::int64_t>(lo, 0);
    hi = std::max<std::int64_t>(hi, 0);
    any = true;
  }
  if (!any) return AbsValue::constant(0);  // divisor interval is {0}
  return AbsValue::range(lo, hi);
}

// ---------------------------------------------------------------------------
// AbsBox

AbsBox AbsBox::top(const std::vector<int>& cards) {
  AbsBox b;
  b.vars.reserve(cards.size());
  for (int card : cards) b.vars.push_back(AbsValue::domain(card));
  return b;
}

bool AbsBox::is_bottom() const {
  return std::any_of(vars.begin(), vars.end(),
                     [](const AbsValue& v) { return v.is_bottom(); });
}

bool AbsBox::contains(const StateVec& s) const {
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (!vars[i].contains(static_cast<std::int64_t>(s[i]))) return false;
  }
  return true;
}

bool AbsBox::leq(const AbsBox& o) const {
  if (is_bottom()) return true;
  if (o.is_bottom()) return false;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (!vars[i].leq(o.vars[i])) return false;
  }
  return true;
}

AbsBox AbsBox::join(const AbsBox& a, const AbsBox& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  AbsBox out;
  out.vars.reserve(a.vars.size());
  for (std::size_t i = 0; i < a.vars.size(); ++i) {
    out.vars.push_back(AbsValue::join(a.vars[i], b.vars[i]));
  }
  return out;
}

double AbsBox::gamma_size(const std::vector<int>& cards) const {
  if (is_bottom()) return 0.0;
  double n = 1.0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    n *= static_cast<double>(vars[i].count_in_domain(cards[i]));
  }
  return n;
}

std::string AbsBox::format(const std::vector<std::string>& names) const {
  if (is_bottom()) return "_|_";
  std::string s;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (!s.empty()) s += " ";
    s += names[i] + (vars[i].is_constant() ? "" : "=") + vars[i].format();
  }
  return s;
}

// ---------------------------------------------------------------------------
// AbsRegion

bool AbsRegion::contains(const StateVec& s) const {
  return std::any_of(boxes.begin(), boxes.end(),
                     [&](const AbsBox& b) { return b.contains(s); });
}

bool AbsRegion::add(AbsBox b) {
  if (b.is_bottom()) return false;
  for (const AbsBox& existing : boxes) {
    if (b.leq(existing)) return false;
  }
  std::erase_if(boxes, [&](const AbsBox& existing) { return existing.leq(b); });
  boxes.push_back(std::move(b));
  return true;
}

AbsBox AbsRegion::hull() const {
  AbsBox h = boxes.front();
  for (std::size_t i = 1; i < boxes.size(); ++i) h = AbsBox::join(h, boxes[i]);
  return h;
}

double AbsRegion::gamma_size_bound(const std::vector<int>& cards) const {
  double n = 0.0;
  for (const AbsBox& b : boxes) n += b.gamma_size(cards);
  return n;
}

}  // namespace cref::absint
