#include "absint/transfer.hpp"

namespace cref::absint {

using gcl::Expr;
using gcl::Op;

std::vector<int> cards_of(const gcl::SystemAst& ast) {
  std::vector<int> cards;
  cards.reserve(ast.vars.size());
  for (const auto& v : ast.vars) cards.push_back(v.cardinality);
  return cards;
}

std::vector<std::string> names_of(const gcl::SystemAst& ast) {
  std::vector<std::string> names;
  names.reserve(ast.vars.size());
  for (const auto& v : ast.vars) names.push_back(v.name);
  return names;
}

AbsValue abs_eval(const Expr& e, const AbsBox& box) {
  if (box.is_bottom()) return AbsValue::bottom();
  auto child = [&](std::size_t i) { return abs_eval(e.children[i], box); };
  switch (e.op) {
    case Op::Const: return AbsValue::constant(e.value);
    case Op::Var: return box.vars[e.var_index];
    case Op::Not: {
      AbsValue a = child(0);
      if (a.is_bottom()) return AbsValue::bottom();
      if (a.surely_false()) return AbsValue::constant(1);
      if (a.surely_true()) return AbsValue::constant(0);
      return AbsValue::boolean();
    }
    case Op::Neg: return abs_neg(child(0));
    case Op::Add: return abs_add(child(0), child(1));
    case Op::Sub: return abs_sub(child(0), child(1));
    case Op::Mul: return abs_mul(child(0), child(1));
    case Op::Mod: return abs_mod(child(0), child(1));
    case Op::Div: return abs_div(child(0), child(1));
    case Op::Eq: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.is_constant() && b.is_constant())
        return AbsValue::constant(a.iv.lo == b.iv.lo ? 1 : 0);
      if (AbsValue::meet(a, b).is_bottom()) return AbsValue::constant(0);
      return AbsValue::boolean();
    }
    case Op::Ne: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.is_constant() && b.is_constant())
        return AbsValue::constant(a.iv.lo != b.iv.lo ? 1 : 0);
      if (AbsValue::meet(a, b).is_bottom()) return AbsValue::constant(1);
      return AbsValue::boolean();
    }
    case Op::Lt: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.iv.hi < b.iv.lo) return AbsValue::constant(1);
      if (a.iv.lo >= b.iv.hi) return AbsValue::constant(0);
      return AbsValue::boolean();
    }
    case Op::Le: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.iv.hi <= b.iv.lo) return AbsValue::constant(1);
      if (a.iv.lo > b.iv.hi) return AbsValue::constant(0);
      return AbsValue::boolean();
    }
    case Op::Gt: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.iv.lo > b.iv.hi) return AbsValue::constant(1);
      if (a.iv.hi <= b.iv.lo) return AbsValue::constant(0);
      return AbsValue::boolean();
    }
    case Op::Ge: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.iv.lo >= b.iv.hi) return AbsValue::constant(1);
      if (a.iv.hi < b.iv.lo) return AbsValue::constant(0);
      return AbsValue::boolean();
    }
    case Op::And: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.surely_false() || b.surely_false()) return AbsValue::constant(0);
      if (a.surely_true() && b.surely_true()) return AbsValue::constant(1);
      return AbsValue::boolean();
    }
    case Op::Or: {
      AbsValue a = child(0), b = child(1);
      if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
      if (a.surely_true() || b.surely_true()) return AbsValue::constant(1);
      if (a.surely_false() && b.surely_false()) return AbsValue::constant(0);
      return AbsValue::boolean();
    }
  }
  return AbsValue::boolean();
}

namespace {

/// The relation `rel` holds under negation-normalization: !(a < b) is
/// (a >= b), and so on. Only called with comparison operators.
Op negate_rel(Op rel) {
  switch (rel) {
    case Op::Eq: return Op::Ne;
    case Op::Ne: return Op::Eq;
    case Op::Lt: return Op::Ge;
    case Op::Le: return Op::Gt;
    case Op::Gt: return Op::Le;
    case Op::Ge: return Op::Lt;
    default: return rel;
  }
}

bool is_comparison(Op op) {
  switch (op) {
    case Op::Eq:
    case Op::Ne:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
      return true;
    default:
      return false;
  }
}

/// Shaves `c` off `v` when it sits on an interval endpoint (interior
/// points cannot be carved out of a convex interval).
AbsValue exclude_point(const AbsValue& v, std::int64_t c) {
  if (!v.contains(c)) return v;
  if (v.iv.lo == c) return AbsValue::meet(v, AbsValue::range(sat_add(c, 1), kInf));
  if (v.iv.hi == c) return AbsValue::meet(v, AbsValue::range(-kInf, sat_sub(c, 1)));
  return v;
}

/// Refines box by `lhs rel rhs`. Narrowed values are written back only
/// when a side is a bare variable reference; anything deeper keeps the
/// box unchanged (sound — refinement only ever shrinks).
bool refine_cmp(AbsBox& box, const Expr& lhs, const Expr& rhs, Op rel) {
  AbsValue va = abs_eval(lhs, box);
  AbsValue vb = abs_eval(rhs, box);
  if (va.is_bottom() || vb.is_bottom()) return false;
  AbsValue na = va, nb = vb;
  switch (rel) {
    case Op::Eq:
      na = nb = AbsValue::meet(va, vb);
      break;
    case Op::Ne:
      if (va.is_constant() && vb.is_constant() && va.iv.lo == vb.iv.lo) return false;
      if (vb.is_constant()) na = exclude_point(va, vb.iv.lo);
      if (va.is_constant()) nb = exclude_point(vb, va.iv.lo);
      break;
    case Op::Lt:
      na = AbsValue::meet(va, AbsValue::range(-kInf, sat_sub(vb.iv.hi, 1)));
      nb = AbsValue::meet(vb, AbsValue::range(sat_add(va.iv.lo, 1), kInf));
      break;
    case Op::Le:
      na = AbsValue::meet(va, AbsValue::range(-kInf, vb.iv.hi));
      nb = AbsValue::meet(vb, AbsValue::range(va.iv.lo, kInf));
      break;
    case Op::Gt:
      na = AbsValue::meet(va, AbsValue::range(sat_add(vb.iv.lo, 1), kInf));
      nb = AbsValue::meet(vb, AbsValue::range(-kInf, sat_sub(va.iv.hi, 1)));
      break;
    case Op::Ge:
      na = AbsValue::meet(va, AbsValue::range(vb.iv.lo, kInf));
      nb = AbsValue::meet(vb, AbsValue::range(-kInf, va.iv.hi));
      break;
    default:
      return true;
  }
  if (na.is_bottom() || nb.is_bottom()) return false;
  if (lhs.op == Op::Var) box.vars[lhs.var_index] = na;
  if (rhs.op == Op::Var) box.vars[rhs.var_index] = nb;
  return !box.is_bottom();
}

}  // namespace

bool refine_by_guard(AbsBox& box, const Expr& e, bool truth) {
  AbsValue v = abs_eval(e, box);
  if (v.is_bottom()) return false;
  if (truth && v.surely_false()) return false;
  if (!truth && v.surely_true()) return false;
  switch (e.op) {
    case Op::Not:
      return refine_by_guard(box, e.children[0], !truth);
    case Op::And:
    case Op::Or: {
      // `a && b` under truth (dually `a || b` under falsity) constrains
      // both conjuncts; the other polarity is a disjunction of the two
      // branch refinements, folded back into one box by join.
      bool conjunctive = (e.op == Op::And) == truth;
      if (conjunctive) {
        return refine_by_guard(box, e.children[0], truth) &&
               refine_by_guard(box, e.children[1], truth);
      }
      AbsBox left = box, right = box;
      bool ok_left = refine_by_guard(left, e.children[0], truth);
      bool ok_right = refine_by_guard(right, e.children[1], truth);
      if (!ok_left && !ok_right) return false;
      if (ok_left && ok_right) {
        box = AbsBox::join(left, right);
      } else {
        box = ok_left ? left : right;
      }
      return true;
    }
    case Op::Var: {
      // A bare variable as a guard: truthy excludes 0, falsy pins to 0.
      AbsValue& slot = box.vars[e.var_index];
      slot = truth ? exclude_point(slot, 0)
                   : AbsValue::meet(slot, AbsValue::constant(0));
      return !slot.is_bottom();
    }
    default:
      if (is_comparison(e.op)) {
        Op rel = truth ? e.op : negate_rel(e.op);
        return refine_cmp(box, e.children[0], e.children[1], rel);
      }
      // Const was decided by the surely_* cut; arithmetic guards carry
      // no cheap refinement.
      return true;
  }
}

std::optional<AbsBox> apply_action(const AbsBox& box, const gcl::ActionAst& action,
                                   const std::vector<int>& cards) {
  AbsBox pre = box;
  if (pre.is_bottom() || !refine_by_guard(pre, action.guard, true)) {
    return std::nullopt;
  }
  // Multiple assignment: all right-hand sides see the pre-state.
  std::vector<AbsValue> values;
  values.reserve(action.assignments.size());
  for (const auto& asg : action.assignments) {
    values.push_back(abs_eval(asg.value, pre));
  }
  AbsBox post = pre;
  for (std::size_t i = 0; i < action.assignments.size(); ++i) {
    std::size_t tgt = action.assignments[i].var_index;
    post.vars[tgt] =
        abs_mod(values[i], AbsValue::constant(cards[tgt]));  // compile.cpp wrap
  }
  if (post.is_bottom()) return std::nullopt;
  return post;
}

}  // namespace cref::absint
