#pragma once

// Abstract transformers for GCL expressions and actions over the
// interval x congruence domain (domain.hpp). These mirror gcl::eval /
// gcl::compile exactly — Euclidean mod/div, total division by zero,
// 0/1 comparisons, assignment wrap-around modulo the declared
// cardinality — so gamma(abs_eval(e, box)) always covers eval(e, s)
// for every concrete state s in gamma(box). The absint-soundness fuzz
// oracle and tests/absint/transfer_test.cpp enforce that contract
// mechanically.

#include <optional>
#include <vector>

#include "absint/domain.hpp"
#include "gcl/ast.hpp"

namespace cref::absint {

/// Declared cardinalities of `ast.vars`, in declaration order (the
/// AbsBox variable order used throughout this module).
std::vector<int> cards_of(const gcl::SystemAst& ast);

/// Variable names of `ast.vars` for box formatting.
std::vector<std::string> names_of(const gcl::SystemAst& ast);

/// Abstract value of `e` over all concrete states in gamma(box).
/// Sound: eval(e, s) is in gamma(abs_eval(e, box)) for every s in
/// gamma(box). Returns bottom iff box has a bottom component.
AbsValue abs_eval(const gcl::Expr& e, const AbsBox& box);

/// Narrows `box` to (an over-approximation of) the states where `e`
/// evaluates truthy (`truth` = true) or falsy (`truth` = false).
/// Returns false when the refined box is bottom — i.e. `e` provably has
/// no `truth`-valued state in gamma(box); `box` is unspecified then.
/// Sound: every s in gamma(box) with truthiness(eval(e, s)) == truth is
/// retained.
bool refine_by_guard(AbsBox& box, const gcl::Expr& e, bool truth);

/// Abstract post-state of one action: refine by the guard, evaluate all
/// right-hand sides against the OLD box (multiple assignment), then
/// write each target reduced modulo its cardinality. nullopt when the
/// guard is provably unsatisfiable in gamma(box).
std::optional<AbsBox> apply_action(const AbsBox& box, const gcl::ActionAst& action,
                                   const std::vector<int>& cards);

}  // namespace cref::absint
