#include "absint/absint.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>

namespace cref::absint {
namespace {

/// Collects the top-level `||` disjuncts of a predicate. Nested
/// disjunctions under negation/conjunction are handled (soundly, by
/// join) inside refine_by_guard instead.
void split_or(const gcl::Expr& e, std::vector<const gcl::Expr*>& out) {
  if (e.op == gcl::Op::Or) {
    split_or(e.children[0], out);
    split_or(e.children[1], out);
  } else {
    out.push_back(&e);
  }
}

/// Two refinement passes per disjunct: the second pass re-runs the
/// comparisons against the values narrowed by the first, which matters
/// for chained constraints like `x == y && y == 2`.
bool refine_twice(AbsBox& box, const gcl::Expr& e) {
  return refine_by_guard(box, e, true) && refine_by_guard(box, e, true);
}

/// Single-box ascending-chain fixpoint from `start` — the collapse
/// fallback when the disjunctive worklist overruns its budgets. The
/// chain length is bounded by the summed per-variable lattice heights
/// (each strict growth widens some interval endpoint or coarsens some
/// congruence); if the conservative cap is ever exceeded the result
/// degrades to the top box, which is trivially sound.
AbsBox hull_fixpoint(const gcl::SystemAst& ast, AbsBox start,
                     const std::vector<int>& cards) {
  std::size_t cap = 64;
  for (int card : cards) {
    cap += static_cast<std::size_t>(std::min(2 * card + 8, 1024));
  }
  AbsBox h = std::move(start);
  for (std::size_t iter = 0; iter < cap; ++iter) {
    AbsBox next = h;
    for (const auto& action : ast.actions) {
      if (auto post = apply_action(h, action, cards)) {
        next = AbsBox::join(next, *post);
      }
    }
    if (next == h) return h;
    h = std::move(next);
  }
  return AbsBox::top(cards);
}

}  // namespace

AbsRegion region_from_predicate(const gcl::SystemAst& ast, const gcl::Expr& pred,
                                std::size_t max_disjuncts) {
  std::vector<int> cards = cards_of(ast);
  std::vector<const gcl::Expr*> disjuncts;
  split_or(pred, disjuncts);
  AbsRegion region;
  if (disjuncts.size() > max_disjuncts) {
    // Too many top-level disjuncts to keep separate: refine the whole
    // predicate over one box (refine_by_guard joins branches itself).
    AbsBox box = AbsBox::top(cards);
    if (refine_twice(box, pred)) region.add(std::move(box));
    return region;
  }
  for (const gcl::Expr* d : disjuncts) {
    AbsBox box = AbsBox::top(cards);
    if (refine_twice(box, *d)) region.add(std::move(box));
  }
  return region;
}

AbsRegion init_region(const gcl::SystemAst& ast, std::size_t max_disjuncts) {
  if (ast.init) return region_from_predicate(ast, *ast.init, max_disjuncts);
  AbsRegion region;
  region.add(AbsBox::top(cards_of(ast)));
  return region;
}

AbsintResult analyze_reachable_from(const gcl::SystemAst& ast, const AbsRegion& init,
                                    const AbsintOptions& opts) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<int> cards = cards_of(ast);
  AbsintResult res;
  std::deque<AbsBox> work;
  for (const AbsBox& b : init.boxes) {
    if (res.region.add(b)) work.push_back(b);
  }
  while (!work.empty()) {
    if (res.iterations >= opts.max_steps ||
        res.region.boxes.size() > opts.max_disjuncts) {
      res.collapsed = true;
      break;
    }
    ++res.iterations;
    AbsBox b = std::move(work.front());
    work.pop_front();
    // b may have been subsumed out of the region meanwhile; processing
    // it anyway is sound (its posts are below the superseding box's).
    for (const auto& action : ast.actions) {
      if (auto post = apply_action(b, action, cards)) {
        if (res.region.add(*post)) work.push_back(std::move(*post));
      }
    }
  }
  if (res.collapsed) {
    AbsBox start = res.region.is_bottom() ? AbsBox::top(cards) : res.region.hull();
    res.region.boxes.clear();
    res.region.add(hull_fixpoint(ast, std::move(start), cards));
  }
  auto t1 = std::chrono::steady_clock::now();
  res.analysis_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return res;
}

AbsintResult analyze_reachable(const gcl::SystemAst& ast, const AbsintOptions& opts) {
  return analyze_reachable_from(ast, init_region(ast, opts.max_disjuncts), opts);
}

StatePredicate make_state_filter(AbsRegion region) {
  auto shared = std::make_shared<const AbsRegion>(std::move(region));
  return [shared](const StateVec& s) { return shared->contains(s); };
}

}  // namespace cref::absint
