#pragma once

// Abstract domains for the GCL abstract interpreter (see absint.hpp for
// the fixpoint engine and DESIGN.md Section 10 for the rationale).
//
// The value domain is the reduced product of two classic non-relational
// domains, both EXACT-friendly because every GCL variable ranges over a
// declared finite domain 0..card-1:
//
//   Interval    [lo, hi]            (bottom iff lo > hi)
//   Congruence  x == rem (mod mod)  (mod == 0: the constant rem;
//                                    mod == 1: top; mod >= 2: a residue
//                                    class with 0 <= rem < mod)
//
// An AbsValue pairs the two and keeps them mutually reduced: the
// interval endpoints are advanced to the nearest members of the residue
// class, and a one-point interval collapses the congruence to a
// constant. An AbsBox assigns one AbsValue per program variable (the
// abstract product state); an AbsRegion is a bounded disjunction of
// boxes, which is what lets the analysis stay exact on protocols like
// the K-state ring whose reachable set is a union of far-apart points
// rather than one connected box.
//
// All lattice heights are finite here (intervals over a finite domain,
// congruence moduli descending by divisibility), so ascending fixpoint
// chains terminate without widening — see absint.cpp.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/space.hpp"

namespace cref::absint {

/// Saturation bound for interval endpoints: far beyond any GCL domain
/// or literal the analyses care about, small enough that a single
/// add/sub/mul on in-range operands cannot overflow int64.
inline constexpr std::int64_t kInf = std::int64_t{1} << 40;

/// Saturating arithmetic: results are clamped to [-kInf, kInf], so the
/// transformers can never trip signed overflow UB on adversarial
/// constants.
std::int64_t sat_add(std::int64_t a, std::int64_t b);
std::int64_t sat_sub(std::int64_t a, std::int64_t b);
std::int64_t sat_mul(std::int64_t a, std::int64_t b);

/// A (possibly empty) integer interval.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;  // default-constructed: bottom

  static Interval bottom() { return {0, -1}; }
  static Interval point(std::int64_t v) { return {v, v}; }
  static Interval range(std::int64_t lo, std::int64_t hi) { return {lo, hi}; }
  static Interval top() { return {-kInf, kInf}; }

  bool is_bottom() const { return lo > hi; }
  bool is_point() const { return lo == hi; }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }

  bool leq(const Interval& o) const;
  static Interval join(const Interval& a, const Interval& b);
  static Interval meet(const Interval& a, const Interval& b);

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A residue class (Granger's congruence domain). There is no bottom
/// representation — emptiness lives in the interval component of the
/// product (AbsValue).
struct Congruence {
  std::int64_t mod = 1;  // 0: constant; 1: top; >= 2: residue class
  std::int64_t rem = 0;  // in [0, mod) when mod >= 2

  static Congruence top() { return {1, 0}; }
  static Congruence constant(std::int64_t v) { return {0, v}; }
  /// Canonicalized class {x : x == r (mod m)}; m <= 1 collapses to top.
  static Congruence residue(std::int64_t m, std::int64_t r);

  bool is_top() const { return mod == 1; }
  bool is_constant() const { return mod == 0; }
  bool contains(std::int64_t v) const;

  /// gamma(a) subseteq gamma(b).
  bool leq(const Congruence& o) const;
  static Congruence join(const Congruence& a, const Congruence& b);
  /// Exact intersection (CRT); nullopt when the classes are disjoint.
  static std::optional<Congruence> meet(const Congruence& a, const Congruence& b);

  static Congruence add(const Congruence& a, const Congruence& b);
  static Congruence sub(const Congruence& a, const Congruence& b);
  static Congruence mul(const Congruence& a, const Congruence& b);
  static Congruence neg(const Congruence& a);

  friend bool operator==(const Congruence&, const Congruence&) = default;
};

/// The reduced product interval x congruence. Bottom is normalized to
/// (empty interval, top congruence) by reduced().
struct AbsValue {
  Interval iv;
  Congruence cg;

  static AbsValue bottom() { return {Interval::bottom(), Congruence::top()}; }
  static AbsValue constant(std::int64_t v) {
    return {Interval::point(v), Congruence::constant(v)};
  }
  static AbsValue range(std::int64_t lo, std::int64_t hi) {
    AbsValue v{Interval::range(lo, hi), Congruence::top()};
    return v.reduced();
  }
  /// The full domain 0..card-1 of a declared variable.
  static AbsValue domain(int card) { return range(0, card - 1); }
  /// The abstraction of a boolean test outcome.
  static AbsValue boolean() { return range(0, 1); }

  bool is_bottom() const { return iv.is_bottom(); }
  bool is_constant() const { return !is_bottom() && iv.is_point(); }
  bool contains(std::int64_t v) const { return iv.contains(v) && cg.contains(v); }

  /// Truthiness of a guard/expression value (nonzero is true).
  bool surely_true() const { return !is_bottom() && !contains(0); }
  bool surely_false() const { return !is_bottom() && iv == Interval::point(0); }

  /// Mutually tightens the two components: interval endpoints move to
  /// the nearest residue-class members, a one-point interval fixes the
  /// congruence, and an infeasible pair collapses to bottom.
  AbsValue reduced() const;

  bool leq(const AbsValue& o) const;
  static AbsValue join(const AbsValue& a, const AbsValue& b);
  static AbsValue meet(const AbsValue& a, const AbsValue& b);

  /// Number of members in gamma intersected with 0..card-1.
  int count_in_domain(int card) const;

  /// "_|_", "=5", "[0..7]", or "[0..6] mod2=0".
  std::string format() const;

  friend bool operator==(const AbsValue&, const AbsValue&) = default;
};

// Abstract arithmetic, sound for gcl::eval's semantics (including the
// Euclidean mod/div pair and the divisor-zero-yields-zero convention).
AbsValue abs_add(const AbsValue& a, const AbsValue& b);
AbsValue abs_sub(const AbsValue& a, const AbsValue& b);
AbsValue abs_mul(const AbsValue& a, const AbsValue& b);
AbsValue abs_neg(const AbsValue& a);
AbsValue abs_mod(const AbsValue& a, const AbsValue& b);
AbsValue abs_div(const AbsValue& a, const AbsValue& b);

/// One abstract product state: one AbsValue per declared variable, in
/// declaration order. A box with any bottom component denotes the empty
/// set of states.
struct AbsBox {
  std::vector<AbsValue> vars;

  static AbsBox top(const std::vector<int>& cards);

  bool is_bottom() const;
  bool contains(const StateVec& s) const;
  bool leq(const AbsBox& o) const;
  static AbsBox join(const AbsBox& a, const AbsBox& b);

  /// Product of per-variable member counts within the declared domains.
  double gamma_size(const std::vector<int>& cards) const;

  /// "c0=[0..2] c1==1 ..." using `names` for display.
  std::string format(const std::vector<std::string>& names) const;

  friend bool operator==(const AbsBox&, const AbsBox&) = default;
};

/// A bounded disjunction of boxes; empty means bottom (no states). The
/// concretization is the union of the boxes' concretizations.
struct AbsRegion {
  std::vector<AbsBox> boxes;

  bool is_bottom() const { return boxes.empty(); }
  bool contains(const StateVec& s) const;

  /// Adds `b` unless it is bottom or subsumed by an existing box;
  /// removes existing boxes subsumed by `b`. Returns true if added.
  bool add(AbsBox b);

  /// Join of all boxes (top-less bottom stays bottom-less: precondition
  /// !is_bottom()).
  AbsBox hull() const;

  /// Sum of per-box gamma sizes: an overlap-counting upper bound on the
  /// number of concrete states in the region.
  double gamma_size_bound(const std::vector<int>& cards) const;
};

}  // namespace cref::absint
