#pragma once

// Static closure certificates: prove, from the program text alone, that
// a candidate predicate B is closed under every action of a GCL program
// — the precondition of the paper's Theorems 1 and 3. The proof is a
// per-(box, action) obligation list over the abstraction of B
// (region_from_predicate): each obligation shows the abstract
// post-state either stays inside a box of B's region or satisfies B
// outright, or that the action's guard is unsatisfiable inside the box.
//
// Trust story (mirroring refinement/certificate.hpp): the generator
// here is paired with two validators — check_closure_certificate
// re-derives every obligation from the AST, and the graph-level
// cref::validate_closed_region (refinement/certificate.hpp) re-checks
// the materialized region edge-by-edge on an explicit TransitionGraph
// without touching any absint code. Because abstraction is an
// over-approximation, a static proof can FAIL on a predicate that is in
// fact closed (incompleteness); it can never claim closure wrongly —
// the absint-soundness fuzz oracle cross-checks exactly that.

#include <optional>
#include <string>
#include <vector>

#include "absint/absint.hpp"
#include "refinement/certificate.hpp"

namespace cref::absint {

/// One proof obligation: the action applied to one box of B's region.
struct ClosureObligation {
  std::string action;     // action name
  std::size_t box_index;  // index into ClosureCertificate::region.boxes
  bool vacuous = false;   // guard unsatisfiable in the box — nothing to show
  AbsBox post;            // abstract post-state (empty when vacuous)
};

/// A static proof that B is closed under the program's actions.
struct ClosureCertificate {
  std::string predicate;  // pretty-printed B, for display only
  AbsRegion region;       // abstraction of B the obligations quantify over
  std::vector<ClosureObligation> obligations;  // one per (box, action)
};

/// Attempts the static closure proof for `predicate`. nullopt when some
/// obligation cannot be discharged — either B is genuinely not closed,
/// or the abstraction is too coarse to see that it is.
std::optional<ClosureCertificate> make_closure_certificate(const gcl::SystemAst& ast,
                                                           const gcl::Expr& predicate);

/// Re-derives every obligation of `cert` from the AST and `predicate`:
/// the region must be the abstraction of the predicate, the obligation
/// list must cover every (box, action) pair, and each post must be
/// covered by the region or prove the predicate. True iff all hold.
bool check_closure_certificate(const gcl::SystemAst& ast, const gcl::Expr& predicate,
                               const ClosureCertificate& cert);

/// Materializes the region as a graph-level ClosedRegionCertificate by
/// scanning Sigma of `space` (which must be the compile() space of the
/// same program). Bridges the static proof to the explicit validator
/// cref::validate_closed_region; intended for test/oracle-sized spaces.
ClosedRegionCertificate to_closed_region_certificate(const Space& space,
                                                     const AbsRegion& region);

/// Convenience: parses `text` as a predicate over ast's variables by
/// wrapping it in a synthetic system with the same declarations.
/// nullopt on parse/resolution errors (message in *error if non-null).
std::optional<gcl::Expr> parse_predicate(const gcl::SystemAst& ast,
                                         const std::string& text,
                                         std::string* error = nullptr);

}  // namespace cref::absint
