#pragma once

// The abstract-interpretation fixpoint engine: computes a sound
// over-approximation R# of the states reachable from an abstract
// initial region of a GCL program, as a bounded disjunction of
// interval x congruence boxes (domain.hpp, transfer.hpp).
//
// No widening is used. Every abstract value is drawn from the finite
// sublattice over the variable's declared domain 0..card-1 (assignment
// wrap-around keeps post-states inside it), so ascending chains are
// finite; the disjunct and step budgets below bound the worklist phase,
// and on overflow the engine collapses to a single-box ascending-chain
// fixpoint whose chain length is itself bounded by the per-variable
// lattice heights. The absolute fallback is the top box — trivially
// sound.
//
// Clients: closure certificates (closure.hpp), explicit-engine pruning
// (core/graph.cpp via make_state_filter), and the absint lint rules
// (lint.hpp).

#include <cstddef>

#include "absint/domain.hpp"
#include "absint/transfer.hpp"
#include "core/system.hpp"
#include "gcl/ast.hpp"

namespace cref::absint {

struct AbsintOptions {
  /// Cap on the number of disjuncts in R#; exceeding it collapses the
  /// analysis to a single-box fixpoint.
  std::size_t max_disjuncts = 128;
  /// Cap on worklist pops before collapsing.
  std::size_t max_steps = 4096;
};

struct AbsintResult {
  AbsRegion region;           // R#: gamma(region) covers every reachable state
  std::size_t iterations = 0;  // worklist pops performed
  bool collapsed = false;      // budgets overflowed; single-box result
  double analysis_ms = 0.0;
};

/// The abstract initial region: ast.init refined over the top box
/// (top-level `||` disjuncts become separate boxes, up to
/// max_disjuncts), or the whole domain box when the program declares no
/// init.
AbsRegion init_region(const gcl::SystemAst& ast, std::size_t max_disjuncts = 128);

/// Abstraction of an arbitrary predicate over ast's variables (same
/// construction as init_region). Bottom when the predicate is provably
/// unsatisfiable.
AbsRegion region_from_predicate(const gcl::SystemAst& ast, const gcl::Expr& pred,
                                std::size_t max_disjuncts = 128);

/// R# from an explicit abstract initial region.
AbsintResult analyze_reachable_from(const gcl::SystemAst& ast, const AbsRegion& init,
                                    const AbsintOptions& opts = {});

/// R# from the program's own init predicate (init_region(ast)).
AbsintResult analyze_reachable(const gcl::SystemAst& ast,
                               const AbsintOptions& opts = {});

/// Wraps a region as a cref::StatePredicate for
/// System::set_state_filter — the engine-pruning hook. The region is
/// moved into a shared closure so copies of the predicate stay cheap.
StatePredicate make_state_filter(AbsRegion region);

}  // namespace cref::absint
