#include "bidding/server.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cref::bidding {

namespace {
void require_k(int k) {
  if (k < 1) throw std::invalid_argument("bidding server: need k >= 1");
}
}  // namespace

SpecServer::SpecServer(int k) : bids_(static_cast<std::size_t>((require_k(k), k)), 0) {}

void SpecServer::bid(std::int64_t v) {
  auto min_it = std::min_element(bids_.begin(), bids_.end());
  if (v > *min_it) *min_it = v;
}

std::vector<std::int64_t> SpecServer::winners() const {
  std::vector<std::int64_t> w = bids_;
  std::sort(w.rbegin(), w.rend());
  return w;
}

void SpecServer::corrupt(std::size_t index, std::int64_t value) { bids_.at(index) = value; }

SortedListServer::SortedListServer(int k) : bids_(static_cast<std::size_t>((require_k(k), k)), 0) {}

void SortedListServer::bid(std::int64_t v) {
  // Compares against the HEAD only — the implementation's fatal reliance
  // on its sort invariant.
  if (v <= bids_.front()) return;
  bids_.erase(bids_.begin());
  // Insert before the first element greater than v (linear scan, which is
  // deterministic even when a corruption has unsorted the list).
  auto pos = bids_.begin();
  while (pos != bids_.end() && *pos <= v) ++pos;
  bids_.insert(pos, v);
}

std::vector<std::int64_t> SortedListServer::winners() const {
  std::vector<std::int64_t> w = bids_;
  std::sort(w.rbegin(), w.rend());
  return w;
}

void SortedListServer::corrupt(std::size_t index, std::int64_t value) {
  bids_.at(index) = value;
}

WrappedServer::WrappedServer(int k) : inner_(k) {}

void WrappedServer::bid(std::int64_t v) {
  // The wrapper re-establishes the implementation's invariant before the
  // implementation acts — the recovery action of a stabilization wrapper.
  auto list = inner_.list();
  if (!std::is_sorted(list.begin(), list.end())) {
    std::sort(list.begin(), list.end());
    for (std::size_t i = 0; i < list.size(); ++i) inner_.corrupt(i, list[i]);
  }
  inner_.bid(v);
}

std::vector<std::int64_t> WrappedServer::winners() const { return inner_.winners(); }

void WrappedServer::corrupt(std::size_t index, std::int64_t value) {
  inner_.corrupt(index, value);
}

double best_k_minus_1_score(const std::vector<std::int64_t>& genuine_bids,
                            const std::vector<std::int64_t>& winners, int k) {
  if (k < 2) return 1.0;
  std::vector<std::int64_t> top = genuine_bids;
  std::sort(top.rbegin(), top.rend());
  if (static_cast<int>(top.size()) > k) top.resize(static_cast<std::size_t>(k));
  if (top.empty()) return 1.0;
  // Multiset intersection of the top-k with the winners.
  std::multiset<std::int64_t> have(winners.begin(), winners.end());
  std::size_t matched = 0;
  for (std::int64_t want : top) {
    auto it = have.find(want);
    if (it != have.end()) {
      have.erase(it);
      ++matched;
    }
  }
  return std::min(1.0, static_cast<double>(matched) / static_cast<double>(k - 1));
}

namespace {

SpacePtr make_bid_space(int k, int values) {
  std::vector<VarSpec> vars;
  for (int i = 0; i < k; ++i)
    vars.push_back({"b" + std::to_string(i), static_cast<Value>(values)});
  return std::make_shared<Space>(std::move(vars));
}

StatePredicate sorted_initial() {
  return [](const StateVec& s) { return std::is_sorted(s.begin(), s.end()); };
}

}  // namespace

System make_spec_system(int k, int values) {
  require_k(k);
  auto space = make_bid_space(k, values);
  std::vector<Action> actions;
  for (int v = 0; v < values; ++v) {
    actions.push_back({"bid" + std::to_string(v), -1,
                       [v](const StateVec& s) {
                         return v > *std::min_element(s.begin(), s.end());
                       },
                       [v](StateVec& s) {
                         *std::min_element(s.begin(), s.end()) = static_cast<Value>(v);
                         // Canonical multiset representation: sorted.
                         std::sort(s.begin(), s.end());
                       }});
  }
  return System("BiddingSpec", space, std::move(actions), sorted_initial());
}

System make_sorted_list_system(int k, int values) {
  require_k(k);
  auto space = make_bid_space(k, values);
  std::vector<Action> actions;
  for (int v = 0; v < values; ++v) {
    actions.push_back({"bid" + std::to_string(v), -1,
                       [v](const StateVec& s) { return v > s.front(); },
                       [v](StateVec& s) {
                         s.erase(s.begin());
                         auto pos = s.begin();
                         while (pos != s.end() && *pos <= v) ++pos;
                         s.insert(pos, static_cast<Value>(v));
                       }});
  }
  return System("SortedListImpl", space, std::move(actions), sorted_initial());
}

System make_sort_wrapper(int k, int values) {
  require_k(k);
  auto space = make_bid_space(k, values);
  Action a;
  a.name = "sort";
  a.process = -1;
  a.guard = [](const StateVec& s) { return !std::is_sorted(s.begin(), s.end()); };
  a.effect = [](StateVec& s) { std::sort(s.begin(), s.end()); };
  return System("SortWrapper", space, {std::move(a)}, std::nullopt);
}

}  // namespace cref::bidding
