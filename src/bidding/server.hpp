#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"

namespace cref::bidding {

/// The paper's introductory bidding-server example (Section 1): a server
/// stores the highest k bids; bid(v) replaces the minimum stored bid when
/// v exceeds it. The SPEC is tolerant to one corrupted stored bid (it
/// still serves (k-1) of the best-k); the sorted-list IMPLEMENTATION is
/// not (a head corrupted to MAX blocks all future bids).

/// Specification-level server: stores a multiset, recomputes the minimum
/// on every bid. Tolerates corruption of any single stored bid.
class SpecServer {
 public:
  explicit SpecServer(int k);
  void bid(std::int64_t v);
  /// Stored bids in descending order (the would-be winners).
  std::vector<std::int64_t> winners() const;
  /// Transient fault: overwrite stored bid `index` (0..k-1, arbitrary
  /// internal order) with `value`.
  void corrupt(std::size_t index, std::int64_t value);

 private:
  std::vector<std::int64_t> bids_;  // unordered
};

/// Sorted-list implementation: keeps bids ascending with the minimum at
/// the head and compares incoming bids against the HEAD ONLY. Correct
/// from initial states, NOT tolerant: if the head is corrupted upward,
/// no new bid ever enters.
class SortedListServer {
 public:
  explicit SortedListServer(int k);
  void bid(std::int64_t v);
  std::vector<std::int64_t> winners() const;
  void corrupt(std::size_t index, std::int64_t value);
  const std::vector<std::int64_t>& list() const { return bids_; }

 private:
  std::vector<std::int64_t> bids_;  // ascending; head = presumed minimum
};

/// The sorted-list implementation with a stabilization wrapper in the
/// sense of the paper: before each bid the wrapper re-establishes the
/// list's sort invariant (the "recovery action" that makes the composite
/// track the spec again after a corruption).
class WrappedServer {
 public:
  explicit WrappedServer(int k);
  void bid(std::int64_t v);
  std::vector<std::int64_t> winners() const;
  void corrupt(std::size_t index, std::int64_t value);

 private:
  SortedListServer inner_;
};

/// The paper's "(k-1) out of best-k" tolerance measure: how many of the
/// best k genuine bids (all bids ever submitted) appear among `winners`,
/// divided by k-1 and capped at 1. A tolerant server scores 1.0 — the
/// corruption may destroy at most one of the best k, so k-1 must still
/// be served; the frozen sorted list scores below 1.
double best_k_minus_1_score(const std::vector<std::int64_t>& genuine_bids,
                            const std::vector<std::int64_t>& winners, int k);

/// Automaton formulation over a tiny bid domain so the refinement
/// checkers can analyze the example: state = k stored bids, each in
/// 0..values-1; one environment action bid(v) per value v. The spec
/// replaces the true minimum; the implementation compares slot 0 only
/// and keeps the list sorted. Initial states: sorted tuples.
System make_spec_system(int k, int values);
System make_sorted_list_system(int k, int values);
/// The sort wrapper as a system: one action that sorts an unsorted store.
System make_sort_wrapper(int k, int values);

}  // namespace cref::bidding
