#include "util/table.hpp"

#include <cassert>
#include <ostream>
#include <sstream>

namespace cref::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.to_string(); }

}  // namespace cref::util
