#include "util/cli.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace cref::util {

Cli::Cli(int argc, char** argv) : Cli(argc, argv, {}) {}

Cli::Cli(int argc, char** argv, std::initializer_list<const char*> flags) {
  std::set<std::string> flag_set(flags.begin(), flags.end());
  for (int i = 1; i < argc; ++i) {
    std::string arg{argv[i]};
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (!flag_set.count(arg) && i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "1";
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : fallback;
}

std::size_t Cli::get_size(const std::string& key, std::size_t fallback) const {
  long v = get_int(key, -1);
  return v < 0 ? fallback : static_cast<std::size_t>(v);
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

}  // namespace cref::util
