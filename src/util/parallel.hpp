#pragma once

#include <cstddef>
#include <functional>

// Cross-layer parallelism primitives. These live in util/ (not
// refinement/) because the state-space materialization in core/ runs on
// the same chunked thread pool as the refinement engine's edge scans;
// they keep the cref namespace they were born with in refinement/engine
// so every existing call site still reads cref::EngineOptions.

namespace cref {

/// Resolves a user-facing `--threads` value to a worker count: 0 means
/// one per hardware thread (never returns 0, even when the runtime
/// reports unknown concurrency). The single source of truth for the
/// `--threads 0 == hardware_concurrency` convention across every tool
/// and bench binary.
std::size_t resolve_thread_count(std::size_t requested = 0);

/// Tuning knobs of the parallel scans: the refinement engine's edge
/// scans and the Sigma-materialization in TransitionGraph::build. Both
/// are bit-identical to their serial counterparts at any thread count:
/// per-thread partial results are merged by state id, and the CSR build
/// writes each state's slice at a precomputed offset.
///
/// Set the options on a RefinementChecker BEFORE the first check; the
/// options are not synchronized against concurrently running checks.
struct EngineOptions {
  /// Worker threads for the scans. 0 = one per hardware thread.
  /// 1 = fully serial (no threads spawned).
  std::size_t num_threads = 0;

  /// States handed to a worker per grab. 0 = auto: n / (8 * threads),
  /// clamped to at least 64 (small enough to balance skewed successor
  /// lists, large enough to keep the atomic work-queue cold).
  std::size_t chunk_size = 0;

  /// Guided self-scheduling: instead of fixed-size grabs, each worker
  /// takes max(floor, remaining / (4 * threads)) items per grab — large
  /// chunks while work is plentiful, shrinking toward `floor` at the
  /// tail so one skewed chunk cannot strand the pool behind a single
  /// worker. `floor` is chunk_size when nonzero, else 64. Opt-in; all
  /// merges stay bit-identical because no consumer of parallel_chunks
  /// depends on the chunk boundaries (results merge by state id, CSR
  /// slices land at precomputed offsets).
  bool dynamic_chunking = false;

  /// Above this many A-side SCCs the condensation-closure bitsets would
  /// use too much memory; reachability queries fall back to per-query
  /// BFS. Exposed mainly so tests can force the BFS path.
  std::size_t max_comps_for_closure = 20000;

  /// Threads that will actually run for an `n`-item scan (respects
  /// num_threads, hardware_concurrency, and never exceeds n).
  std::size_t resolved_threads(std::size_t n) const;

  /// Chunk size that will actually be used for an `n`-item scan.
  std::size_t resolved_chunk(std::size_t n) const;
};

/// Runs `fn(thread, begin, end)` over dynamically-scheduled chunks of
/// [0, n). `thread` is a dense worker index in [0, threads) usable for
/// per-thread accumulators; chunks are pulled from a shared atomic
/// counter, so a worker may process many non-adjacent chunks. With one
/// resolved thread (or n == 0) everything runs inline on the caller.
/// `fn` must not throw.
void parallel_chunks(std::size_t n, const EngineOptions& opts,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace cref
