#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cref::util {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns true if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Splits `s` on every occurrence of `sep` (no collapsing of empty fields).
std::vector<std::string> split(std::string_view s, char sep);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("3.50" -> "3.5", "4.00" -> "4").
std::string format_double(double value, int digits = 2);

}  // namespace cref::util
