#pragma once

#include <cstddef>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cref::util {

/// Minimal command-line parser used by examples and bench binaries.
/// Accepts `--key=value`, `--key value`, and bare `--flag` (value "1")
/// forms; anything else is collected as a positional argument.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// Same, but the named options are boolean flags: they never consume
  /// the following argument as their value, so `--werror FILE` keeps
  /// FILE positional. (`--flag=0` style still works for them.)
  Cli(int argc, char** argv, std::initializer_list<const char*> flags);

  /// Returns the value of `--key`, or `fallback` if absent.
  std::string get(const std::string& key, const std::string& fallback = "") const;

  /// Returns the integer value of `--key`, or `fallback` if absent/invalid.
  long get_int(const std::string& key, long fallback) const;

  /// Unsigned variant of get_int (negative values fall back), for size
  /// knobs like --threads / --chunk.
  std::size_t get_size(const std::string& key, std::size_t fallback) const;

  /// Returns true if `--key` was passed (with or without a value).
  bool has(const std::string& key) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace cref::util
