#include "util/strings.hpp"

#include <cstdio>

namespace cref::util {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace cref::util
