#pragma once

#include <cstdint>
#include <random>

namespace cref::util {

/// Deterministic uniform draws on top of std::mt19937_64.
///
/// The mt19937_64 engine itself is bit-exactly specified by the standard,
/// but std::uniform_int_distribution is NOT — its algorithm is
/// implementation-defined, so the same seed produces different values on
/// libstdc++ vs libc++. Everything that must be reproducible from a seed
/// across platforms (fault injection goldens, fuzz repro files, shrinker
/// decisions) draws through these fixed algorithms instead.

/// Uniform value in [0, bound). bound == 0 returns 0. Unbiased via
/// rejection sampling on the top of the 64-bit range (Lemire-style
/// threshold; the loop terminates after one draw almost always).
inline std::uint64_t uniform_below(std::mt19937_64& rng, std::uint64_t bound) {
  if (bound == 0) return 0;
  // Reject draws from the final partial bucket so every residue is
  // equally likely: accept x only below the largest multiple of bound.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound + 1) % bound;
  std::uint64_t x = rng();
  while (x > limit) x = rng();
  return x % bound;
}

/// Uniform double in [0, 1) with 53 random bits (the IEEE mantissa).
inline double uniform_unit(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Bernoulli(p) draw; p outside [0, 1] clamps to always-false/always-true.
inline bool chance(std::mt19937_64& rng, double p) { return uniform_unit(rng) < p; }

}  // namespace cref::util
