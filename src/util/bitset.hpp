#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cref::util {

/// Dense fixed-size bitset over 64-bit words, the membership container of
/// the hot reachability/SCC paths. Compared to std::vector<char> it is 8x
/// smaller (one cache line covers 512 states) and supports word-parallel
/// sweeps: BFS frontiers are consumed 64 states at a time, skipping zero
/// words outright and peeling set bits with countr_zero instead of
/// pushing every state through a deque.
///
/// Invariant: bits at positions >= size() are always zero, so operator==
/// and count() are exact and |= of equal-sized sets preserves it.
class DenseBitset {
 public:
  static constexpr std::size_t kWordBits = 64;

  DenseBitset() = default;
  explicit DenseBitset(std::size_t n, bool value = false) { assign(n, value); }

  /// Resizes to `n` bits, all set to `value` (like vector::assign).
  void assign(std::size_t n, bool value = false) {
    size_ = n;
    words_.assign((n + kWordBits - 1) / kWordBits, value ? ~std::uint64_t{0} : 0);
    if (value) clear_tail();
  }

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  /// vector<char>-style membership read (`if (seen[s])`).
  bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i) { words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits); }
  void reset(std::size_t i) { words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits)); }
  void set(std::size_t i, bool value) { value ? set(i) : reset(i); }

  /// Clears every bit, keeping the size (frontier reuse between levels).
  void reset_all() { std::fill(words_.begin(), words_.end(), 0); }

  bool any() const {
    for (std::uint64_t w : words_)
      if (w) return true;
    return false;
  }
  bool none() const { return !any(); }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// Word-parallel union. Precondition: other.size() == size() — a
  /// smaller `other` would be indexed past its word array below
  /// (assert-checked; the word loop is deliberately unguarded so the
  /// hot-path codegen stays a straight or-sweep).
  DenseBitset& operator|=(const DenseBitset& other) {
    assert(other.size_ == size_ && "DenseBitset::operator|= requires equal sizes");
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }

  /// Calls `f(i)` for every set bit in ascending order, 64 states per
  /// word probe (zero words cost one compare).
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        f(w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;  // drop lowest set bit
      }
    }
  }

  // Safe on mismatched sizes, unlike |=: for_each_set only reads its own
  // words, and the defaulted == compares size_ first, so equal-sized sets
  // are decided word-by-word (exact, by the tail-bits invariant) and
  // different-sized sets are simply unequal.
  friend bool operator==(const DenseBitset&, const DenseBitset&) = default;

 private:
  void clear_tail() {
    const std::size_t tail = size_ % kWordBits;
    if (tail) words_.back() &= (std::uint64_t{1} << tail) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace cref::util
