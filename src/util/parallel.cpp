#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace cref {

std::size_t EngineOptions::resolved_threads(std::size_t n) const {
  std::size_t t = num_threads;
  if (t == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    t = hw ? hw : 1;
  }
  return std::max<std::size_t>(1, std::min(t, n));
}

std::size_t EngineOptions::resolved_chunk(std::size_t n) const {
  if (chunk_size) return chunk_size;
  std::size_t t = resolved_threads(n);
  return std::max<std::size_t>(64, n / (8 * t));
}

void parallel_chunks(std::size_t n, const EngineOptions& opts,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = opts.resolved_threads(n);
  if (threads <= 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t chunk = opts.resolved_chunk(n);
  std::atomic<std::size_t> next{0};
  auto worker = [&](std::size_t tid) {
    for (;;) {
      std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(tid, begin, std::min(begin + chunk, n));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i) pool.emplace_back(worker, i);
  worker(0);
  for (auto& th : pool) th.join();
}

}  // namespace cref
