#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace cref {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

std::size_t EngineOptions::resolved_threads(std::size_t n) const {
  return std::max<std::size_t>(1, std::min(resolve_thread_count(num_threads), n));
}

std::size_t EngineOptions::resolved_chunk(std::size_t n) const {
  if (chunk_size) return chunk_size;
  std::size_t t = resolved_threads(n);
  return std::max<std::size_t>(64, n / (8 * t));
}

void parallel_chunks(std::size_t n, const EngineOptions& opts,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = opts.resolved_threads(n);
  if (threads <= 1) {
    fn(0, 0, n);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::function<void(std::size_t)> worker;
  if (opts.dynamic_chunking) {
    // Guided self-scheduling: grab size tracks the remaining work, so
    // early grabs are big (few atomic round-trips) and tail grabs shrink
    // to `floor` (no worker left holding a huge final chunk).
    const std::size_t floor = opts.chunk_size ? opts.chunk_size : 64;
    worker = [&, floor](std::size_t tid) {
      std::size_t begin = next.load(std::memory_order_relaxed);
      while (begin < n) {
        const std::size_t grab = std::max(floor, (n - begin) / (4 * threads));
        if (next.compare_exchange_weak(begin, std::min(begin + grab, n),
                                       std::memory_order_relaxed)) {
          fn(tid, begin, std::min(begin + grab, n));
          begin = next.load(std::memory_order_relaxed);
        }
      }
    };
  } else {
    const std::size_t chunk = opts.resolved_chunk(n);
    worker = [&, chunk](std::size_t tid) {
      for (;;) {
        std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        fn(tid, begin, std::min(begin + chunk, n));
      }
    };
  }
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i) pool.emplace_back(worker, i);
  worker(0);
  for (auto& th : pool) th.join();
}

}  // namespace cref
