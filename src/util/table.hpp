#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cref::util {

/// Column-aligned ASCII table used by the bench harness to print
/// paper-style result tables. Cells are free-form strings; columns are
/// sized to the widest cell and separated by two spaces; a rule is drawn
/// under the header row.
class Table {
 public:
  /// Creates a table whose header row is `headers`. Every subsequent row
  /// must have the same number of cells.
  explicit Table(std::vector<std::string> headers);

  /// Appends one data row; aborts (assert) if the cell count mismatches.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (header, rule, rows) to a string ending in '\n'.
  std::string to_string() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cref::util
