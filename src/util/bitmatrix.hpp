#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cref::util {

/// Packed bit matrix: `rows()` rows of `cols()` bits, all in ONE
/// contiguous uint64 allocation with a fixed word stride per row. This is
/// the reachability-closure container of the condensation quotient: row r
/// holds the set of components reachable from component r, and closing a
/// row against a successor component's row is a word-parallel or_row.
///
/// Compared to vector<DenseBitset> (one heap block + ~40 bytes of header
/// per row) the single slab halves small-closure memory, keeps rows
/// cache-adjacent for the increasing-id closure sweep, and makes the
/// total footprint exactly rows * stride * 8 bytes — the number the
/// engine checks against max_comps_for_closure before committing.
///
/// Invariant: bits at column positions >= cols() are always zero (set()
/// asserts the bounds), so row_count() is exact.
class BitMatrix {
 public:
  static constexpr std::size_t kWordBits = 64;

  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), stride_((cols + kWordBits - 1) / kWordBits),
        words_(rows * stride_, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool test(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return (words_[r * stride_ + c / kWordBits] >> (c % kWordBits)) & 1u;
  }

  void set(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    words_[r * stride_ + c / kWordBits] |= std::uint64_t{1} << (c % kWordBits);
  }

  /// row[dst] |= row[src], word-parallel. The closure sweep calls this
  /// with src a successor component of dst (src < dst under Tarjan's
  /// reverse-topological numbering), so src's row is already closed.
  void or_row(std::size_t dst, std::size_t src) {
    assert(dst < rows_ && src < rows_);
    std::uint64_t* d = words_.data() + dst * stride_;
    const std::uint64_t* s = words_.data() + src * stride_;
    for (std::size_t w = 0; w < stride_; ++w) d[w] |= s[w];
  }

  /// Number of set bits in row `r`.
  std::size_t row_count(std::size_t r) const {
    assert(r < rows_);
    const std::uint64_t* p = words_.data() + r * stride_;
    std::size_t n = 0;
    for (std::size_t w = 0; w < stride_; ++w)
      n += static_cast<std::size_t>(std::popcount(p[w]));
    return n;
  }

  /// Calls `f(c)` for every set column of row `r` in ascending order.
  template <typename F>
  void for_each_set_in_row(std::size_t r, F&& f) const {
    assert(r < rows_);
    const std::uint64_t* p = words_.data() + r * stride_;
    for (std::size_t w = 0; w < stride_; ++w) {
      std::uint64_t bits = p[w];
      while (bits) {
        f(w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;  // drop lowest set bit
      }
    }
  }

  /// Heap footprint of the slab, the number compared against the closure
  /// budget before a build commits.
  std::size_t slab_bytes() const { return words_.size() * sizeof(std::uint64_t); }

  friend bool operator==(const BitMatrix&, const BitMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;  // words per row
  std::vector<std::uint64_t> words_;
};

}  // namespace cref::util
