#pragma once

#include <string>
#include <vector>

namespace cref::jvm {

/// The six bytecode instructions needed for the paper's introductory
/// example (the Java compilation of "int x=0; while(x==x){x=0;}").
enum class Op {
  IConst,    // push constant arg
  IStore,    // pop into local slot arg
  ILoad,     // push local slot arg
  Goto,      // jump to address arg
  IfICmpEq,  // pop two; jump to address arg if equal
  Return,    // halt
};

/// One instruction at a bytecode address (addresses are sparse, exactly
/// as javap prints them: 0,1,2,5,6,7,8,9,12 in the paper's listing).
struct Insn {
  int addr;
  Op op;
  int arg = 0;
};

/// Interpreter state of the mini stack machine.
struct VmState {
  int pc_index = 0;              // index into Program::insns(); -1 == halted
  std::vector<int> locals;
  std::vector<int> stack;

  bool halted() const { return pc_index < 0; }
};

/// A straight-line bytecode program over the mini instruction set.
class Program {
 public:
  explicit Program(std::vector<Insn> insns);

  const std::vector<Insn>& insns() const { return insns_; }

  /// Index of the instruction at bytecode address `addr`; -1 if none.
  int index_of_addr(int addr) const;

  /// Executes one instruction. Any fault of the machine model — stack
  /// underflow/overflow, bad jump target, bad local slot — halts the
  /// machine (pc_index := -1), keeping the step function total so the
  /// automaton adapter can quantify over every corrupted state. Returns
  /// false if the machine was already halted.
  bool step(VmState& s, int max_stack) const;

  /// The bytecode listing from the paper's introduction: the compiled
  /// form of "int x=0; while(x==x){x=0;}" with x in local slot 1.
  static Program paper_example();

  /// Disassembly, one instruction per line ("  7  iload 1").
  std::string disassemble() const;

 private:
  std::vector<Insn> insns_;
};

}  // namespace cref::jvm
