#include "jvmsim/automaton.hpp"

#include <stdexcept>

namespace cref::jvm {

namespace {

// Variable layout of the packed VM space.
struct Layout {
  int num_insns;
  int num_locals;
  int max_stack;

  std::size_t pc() const { return 0; }
  std::size_t local(int i) const { return 1 + static_cast<std::size_t>(i); }
  std::size_t stack_size() const { return 1 + static_cast<std::size_t>(num_locals); }
  std::size_t slot(int i) const {
    return 2 + static_cast<std::size_t>(num_locals) + static_cast<std::size_t>(i);
  }
  int halted_pc() const { return num_insns; }

  VmState unpack(const StateVec& v) const {
    VmState s;
    int pc_val = v[pc()];
    s.pc_index = pc_val == halted_pc() ? -1 : pc_val;
    s.locals.resize(num_locals);
    for (int i = 0; i < num_locals; ++i) s.locals[i] = v[local(i)];
    int size = v[stack_size()];
    s.stack.resize(size);
    for (int i = 0; i < size; ++i) s.stack[i] = v[slot(i)];
    return s;
  }

  void pack(const VmState& s, StateVec& v) const {
    v[pc()] = static_cast<Value>(s.pc_index < 0 ? halted_pc() : s.pc_index);
    for (int i = 0; i < num_locals; ++i) v[local(i)] = static_cast<Value>(s.locals[i]);
    v[stack_size()] = static_cast<Value>(s.stack.size());
    // Slots above the new stack size keep their previous (don't-care)
    // values so the effect stays a deterministic function of the state.
    for (std::size_t i = 0; i < s.stack.size(); ++i)
      v[slot(static_cast<int>(i))] = static_cast<Value>(s.stack[i]);
  }
};

}  // namespace

VmAutomaton make_vm_automaton(const Program& program, int num_locals, int max_stack,
                              int value_card, int observed_local) {
  for (const Insn& i : program.insns())
    if (i.op == Op::IConst && (i.arg < 0 || i.arg >= value_card))
      throw std::invalid_argument("make_vm_automaton: constant outside value domain");
  if (observed_local < 0 || observed_local >= num_locals)
    throw std::invalid_argument("make_vm_automaton: bad observed_local");

  Layout l{static_cast<int>(program.insns().size()), num_locals, max_stack};
  std::vector<VarSpec> vars;
  vars.push_back({"pc", static_cast<Value>(l.num_insns + 1)});
  for (int i = 0; i < num_locals; ++i)
    vars.push_back({"local" + std::to_string(i), static_cast<Value>(value_card)});
  vars.push_back({"sp", static_cast<Value>(max_stack + 1)});
  for (int i = 0; i < max_stack; ++i)
    vars.push_back({"stk" + std::to_string(i), static_cast<Value>(value_card)});
  auto space = std::make_shared<Space>(std::move(vars));

  Action step_action;
  step_action.name = "step";
  step_action.process = 0;
  step_action.guard = [l](const StateVec& v) { return v[l.pc()] != l.halted_pc(); };
  step_action.effect = [l, program, max_stack](StateVec& v) {
    VmState s = l.unpack(v);
    program.step(s, max_stack);
    l.pack(s, v);
  };

  StatePredicate initial = [l](const StateVec& v) {
    if (v[l.pc()] != 0 || v[l.stack_size()] != 0) return false;
    for (int i = 0; i < l.num_locals; ++i)
      if (v[l.local(i)] != 0) return false;
    for (int i = 0; i < l.max_stack; ++i)
      if (v[l.slot(i)] != 0) return false;
    return true;
  };

  System system("bytecode", space, {std::move(step_action)}, std::move(initial));
  Abstraction to_local("vm-to-x", space, make_x_space(value_card),
                       [l, observed_local](const StateVec& vm, StateVec& x) {
                         x[0] = vm[l.local(observed_local)];
                       });
  return VmAutomaton{std::move(system), std::move(to_local)};
}

System make_vm_watchdog(const Program& program, int num_locals, int max_stack,
                        int value_card) {
  Layout l{static_cast<int>(program.insns().size()), num_locals, max_stack};
  std::vector<VarSpec> vars;
  vars.push_back({"pc", static_cast<Value>(l.num_insns + 1)});
  for (int i = 0; i < num_locals; ++i)
    vars.push_back({"local" + std::to_string(i), static_cast<Value>(value_card)});
  vars.push_back({"sp", static_cast<Value>(max_stack + 1)});
  for (int i = 0; i < max_stack; ++i)
    vars.push_back({"stk" + std::to_string(i), static_cast<Value>(value_card)});
  auto space = std::make_shared<Space>(std::move(vars));

  Action restart;
  restart.name = "watchdog-restart";
  restart.process = 0;
  restart.guard = [l](const StateVec& v) { return v[l.pc()] == l.halted_pc(); };
  restart.effect = [l](StateVec& v) {
    v[l.pc()] = 0;
    v[l.stack_size()] = 0;
  };
  return System("vm-watchdog", space, {std::move(restart)}, std::nullopt);
}

SpacePtr make_x_space(int value_card) {
  return std::make_shared<Space>(
      std::vector<VarSpec>{{"x", static_cast<Value>(value_card)}});
}

System make_source_loop(SpacePtr x_space) {
  Action a;
  a.name = "x := 0";
  a.process = 0;
  a.guard = [](const StateVec&) { return true; };
  a.effect = [](StateVec& s) { s[0] = 0; };
  StatePredicate initial = [](const StateVec& s) { return s[0] == 0; };
  return System("source-loop", std::move(x_space), {std::move(a)}, std::move(initial));
}

System make_always_zero_spec(SpacePtr x_space) {
  StatePredicate initial = [](const StateVec& s) { return s[0] == 0; };
  return System("always-zero", std::move(x_space), {}, std::move(initial));
}

}  // namespace cref::jvm
