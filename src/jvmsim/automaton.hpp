#pragma once

#include "core/abstraction.hpp"
#include "core/system.hpp"
#include "jvmsim/vm.hpp"

namespace cref::jvm {

/// Exposes a bytecode program's execution as a finite system so the
/// refinement/stabilization checkers can analyze it. The packed state is
///
///   pc (insns+1 values; the last one means "halted"), then each local,
///   then stack_size, then each stack slot,
///
/// with every data value restricted to 0..value_card-1 (the paper's
/// example only ever needs {0, 1}). Stack slots above stack_size are
/// "don't care" bits; the VM never reads them, so distinct encodings of
/// the same logical configuration simply track each other.
///
/// Initial states: pc at the first instruction, all locals and stack
/// slots zero, empty stack.
struct VmAutomaton {
  System system;
  /// Maps a packed VM state to the value of `observed_local` — the
  /// abstraction onto the source-level variable space (e.g. x for the
  /// paper's example). Built by make_vm_automaton.
  Abstraction to_local;
};

VmAutomaton make_vm_automaton(const Program& program, int num_locals, int max_stack,
                              int value_card, int observed_local);

/// The source-level program "while(x==x) { x=0; }" over the x space: one
/// action, guard true, effect x := 0 (a no-op execution from x == 0 is
/// not a transition, so 0 is a deadlock — the loop's steady state).
System make_source_loop(SpacePtr x_space);

/// The specification B = "x is always 0": no transitions, initial x = 0.
/// "Stabilizing to B" is exactly the paper's "eventually ensures x is
/// always 0".
System make_always_zero_spec(SpacePtr x_space);

/// The shared 1-variable space of x (cardinality value_card).
SpacePtr make_x_space(int value_card);

/// A watchdog wrapper for a VM automaton built by make_vm_automaton over
/// the same program/limits: when the machine has halted (the fatal state
/// of the intro example), restart it — reset pc to the first instruction
/// and clear the stack (locals are left alone; the program re-initializes
/// them). Composed with the bytecode system this recovers the tolerance
/// the compiler lost: (bytecode [] watchdog) is stabilizing to
/// "x always 0" again, which bench_intro_bytecode machine-checks.
System make_vm_watchdog(const Program& program, int num_locals, int max_stack,
                        int value_card);

}  // namespace cref::jvm
