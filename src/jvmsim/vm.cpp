#include "jvmsim/vm.hpp"

#include <stdexcept>

namespace cref::jvm {

Program::Program(std::vector<Insn> insns) : insns_(std::move(insns)) {
  if (insns_.empty()) throw std::invalid_argument("Program: empty");
}

int Program::index_of_addr(int addr) const {
  for (std::size_t i = 0; i < insns_.size(); ++i)
    if (insns_[i].addr == addr) return static_cast<int>(i);
  return -1;
}

bool Program::step(VmState& s, int max_stack) const {
  if (s.halted()) return false;
  if (s.pc_index >= static_cast<int>(insns_.size())) {
    s.pc_index = -1;
    return true;
  }
  const Insn& insn = insns_[s.pc_index];
  auto halt = [&] { s.pc_index = -1; };
  auto jump = [&](int addr) {
    int idx = index_of_addr(addr);
    if (idx < 0)
      halt();
    else
      s.pc_index = idx;
  };
  switch (insn.op) {
    case Op::IConst:
      if (static_cast<int>(s.stack.size()) >= max_stack) {
        halt();
        break;
      }
      s.stack.push_back(insn.arg);
      ++s.pc_index;
      break;
    case Op::IStore:
      if (s.stack.empty() || insn.arg < 0 ||
          insn.arg >= static_cast<int>(s.locals.size())) {
        halt();
        break;
      }
      s.locals[insn.arg] = s.stack.back();
      s.stack.pop_back();
      ++s.pc_index;
      break;
    case Op::ILoad:
      if (static_cast<int>(s.stack.size()) >= max_stack || insn.arg < 0 ||
          insn.arg >= static_cast<int>(s.locals.size())) {
        halt();
        break;
      }
      s.stack.push_back(s.locals[insn.arg]);
      ++s.pc_index;
      break;
    case Op::Goto:
      jump(insn.arg);
      break;
    case Op::IfICmpEq: {
      if (s.stack.size() < 2) {
        halt();
        break;
      }
      int b = s.stack.back();
      s.stack.pop_back();
      int a = s.stack.back();
      s.stack.pop_back();
      if (a == b)
        jump(insn.arg);
      else
        ++s.pc_index;
      break;
    }
    case Op::Return:
      halt();
      break;
  }
  return true;
}

Program Program::paper_example() {
  return Program({
      {0, Op::IConst, 0},
      {1, Op::IStore, 1},
      {2, Op::Goto, 7},
      {5, Op::IConst, 0},
      {6, Op::IStore, 1},
      {7, Op::ILoad, 1},
      {8, Op::ILoad, 1},
      {9, Op::IfICmpEq, 5},
      {12, Op::Return, 0},
  });
}

std::string Program::disassemble() const {
  std::string out;
  for (const Insn& i : insns_) {
    out += "  " + std::to_string(i.addr) + "\t";
    switch (i.op) {
      case Op::IConst: out += "iconst " + std::to_string(i.arg); break;
      case Op::IStore: out += "istore " + std::to_string(i.arg); break;
      case Op::ILoad: out += "iload " + std::to_string(i.arg); break;
      case Op::Goto: out += "goto " + std::to_string(i.arg); break;
      case Op::IfICmpEq: out += "if_icmpeq " + std::to_string(i.arg); break;
      case Op::Return: out += "return"; break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace cref::jvm
