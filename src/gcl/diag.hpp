#pragma once

// Structured diagnostics for the GCL semantic analyzer (analyze.hpp).
// A Diagnostic is one finding: a stable rule id, a severity, a source
// position, a human message, and an optional fix hint. Renderers
// produce the gcl_lint text format and a machine-readable JSON
// document (--format=json); see README "gcl_lint" for the rule
// catalog and the JSON schema.

#include <cstddef>
#include <string>
#include <vector>

#include "gcl/ast.hpp"

namespace cref::gcl {

enum class Severity {
  Note,     // informational; never affects the exit code
  Warning,  // a likely defect; fails under --werror
  Error,    // definitely wrong; always fails
};

/// Stable rule identifiers. Keep in sync with rule_id() and the README
/// catalog; ids are part of the tool's output contract (tests and CI
/// grep for them).
enum class Rule {
  ParseError,           // source does not parse (lexer/parser/domain errors)
  GuardAlwaysFalse,     // guard unsatisfiable: the action is dead
  GuardAlwaysTrue,      // guard is a tautology
  AssignWraps,          // RHS can leave the target's domain and silently wrap
  DivByZero,            // divisor is provably always zero
  DivMaybeZero,         // divisor can be zero (evaluates to 0 by convention)
  VarUnused,            // variable is never read nor written
  VarWriteOnly,         // variable is written but never read
  VarNeverWritten,      // variable is read but has no writer anywhere
  ActionDuplicateName,  // two actions share a name
  ActionStutter,        // effect is provably the identity under the guard
  ActionNotSelfDisabling,  // guard can remain enabled after the action's own effect
  VarMultiWriter,       // variable written by actions of >= 2 distinct @processes
  InitUnsatisfiable,    // init predicate has no satisfying state
  // Abstract-interpretation rules (opt-in via --absint; src/absint/lint.hpp).
  AbsintUnreachableAction,  // guard unsatisfiable within R#: action never fires
  AbsintGuardDead,          // guard (or a conjunct) is a tautology within R#
  AbsintVarConstant,        // variable takes a single value across R#
  AbsintInitNotClosed,      // init region is not (provably) closed under actions
  // Superposition rules (opt-in via --prove; src/prover/superposition.hpp).
  WrapperWritesForeignVar,  // wrapper action writes a base variable owned
                            // by a different process (breaks Theorem 3/5
                            // graybox superposition)
  WrapperNonterminating,    // wrapper's own computation is not provably
                            // finite (Theorem 3 side condition)
  // Prover front-end rules (the --format=sarif surface of gcl_prove and
  // gcl_refine; the provers themselves live in src/prover).
  ProveNotProved,  // stabilization/termination proof failed or did not validate
  RefineRefuted,   // [C curlypreceq A] definitely does not hold
  RefineUnknown,   // the static refinement prover ran out of power
};

/// The stable textual id of a rule, e.g. "guard-always-false".
const char* rule_id(Rule r);

/// "note" / "warning" / "error".
const char* severity_name(Severity s);

struct Diagnostic {
  Rule rule = Rule::ParseError;
  Severity severity = Severity::Warning;
  SourceLoc loc;        // 1-based; {0,0} when no position applies
  std::string message;  // what is wrong, with concrete evidence
  std::string hint;     // how to fix it; may be empty

  /// Ordering for stable output: by position, then severity
  /// (errors first), then rule id.
  bool operator<(const Diagnostic& o) const;
};

/// Sorts diagnostics into reporting order (in place).
void sort_diagnostics(std::vector<Diagnostic>& diags);

struct DiagCounts {
  std::size_t notes = 0;
  std::size_t warnings = 0;
  std::size_t errors = 0;
};

DiagCounts count_diagnostics(const std::vector<Diagnostic>& diags);

/// True if the findings should fail the run: any error, or any warning
/// when `werror` is set. Notes never fail.
bool should_fail(const std::vector<Diagnostic>& diags, bool werror);

/// Human-readable rendering, one finding per line:
///   FILE:LINE:COL: SEVERITY: MESSAGE [rule-id]
///       hint: HINT
/// followed by a one-line summary. `file` labels the source (path or
/// "<input>").
std::string render_text(const std::vector<Diagnostic>& diags, const std::string& file);

/// Machine-readable rendering:
///   {"file": ..., "diagnostics": [{"rule", "severity", "line",
///    "column", "message", "hint"}, ...],
///    "counts": {"errors", "warnings", "notes"}}
/// Strings are JSON-escaped; the document ends with a newline.
std::string render_json(const std::vector<Diagnostic>& diags, const std::string& file);

/// As above, with `extra_members` (pre-rendered `"key": value` JSON
/// object members, e.g. analyze.hpp's read/write-set report) spliced
/// into the top-level document after "file". Empty adds nothing.
std::string render_json(const std::vector<Diagnostic>& diags, const std::string& file,
                        const std::string& extra_members);

/// Escapes a string for embedding in a JSON string literal (no quotes
/// added). Exposed for tests and other JSON-emitting tools.
std::string json_escape(const std::string& s);

/// Wraps a lexer/parser exception message ("gcl: line L:C: msg") in a
/// parse-error Diagnostic, recovering the source position when the
/// message carries one ({0,0} otherwise). Lets gcl_lint report files
/// that do not parse through the same text/JSON renderers.
Diagnostic parse_error_diagnostic(const std::string& what);

}  // namespace cref::gcl
