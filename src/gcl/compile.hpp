#pragma once

#include <string>

#include "core/system.hpp"
#include "gcl/ast.hpp"

namespace cref::gcl {

/// Evaluates an expression over a decoded state (int64 arithmetic;
/// comparisons/logic yield 0/1; any nonzero value is truthy). Division
/// or modulo by zero evaluates to 0 (total semantics — model checking
/// must not trap on corrupted states).
std::int64_t eval(const Expr& e, const StateVec& s);

/// Compiles a parsed system into a cref::System over a fresh Space.
/// Assignment values are reduced into the variable's domain modulo its
/// cardinality (mathematically, so negative values wrap upward) — which
/// gives mod-K counters for free: with `var c : 0..2;`, `c := c + 1` is
/// the paper's (+) 1. Actions keep their declared process ids; `init`
/// becomes the initial-state predicate (absent init -> no initial
/// states, i.e. a wrapper).
System compile(const SystemAst& ast);

/// Convenience: parse + compile in one call.
System load_system(const std::string& source);

}  // namespace cref::gcl
