#pragma once

#include <string>

#include "core/system.hpp"
#include "gcl/ast.hpp"

namespace cref::gcl {

/// Euclidean division: the unique q with a == q*b + eval_mod(a, b) and
/// 0 <= eval_mod(a, b) < |b|. Equals floor division for b > 0 (the only
/// divisors reachable from 0-based GCL domains without explicit
/// negation). Returns 0 when b == 0 (total semantics).
std::int64_t eval_div(std::int64_t a, std::int64_t b);

/// Mathematical (always-nonnegative) modulo: result in [0, |b|).
/// Returns 0 when b == 0 (total semantics).
std::int64_t eval_mod(std::int64_t a, std::int64_t b);

/// Evaluates an expression over a decoded state (int64 arithmetic;
/// comparisons/logic yield 0/1; any nonzero value is truthy). Division
/// and modulo use the Euclidean pair above, so `(a / b) * b + a % b == a`
/// holds for every nonzero b; division or modulo by zero evaluates to 0
/// (total semantics — model checking must not trap on corrupted states).
std::int64_t eval(const Expr& e, const StateVec& s);

/// Compiles a parsed system into a cref::System over a fresh Space.
/// Assignment values are reduced into the variable's domain modulo its
/// cardinality (mathematically, so negative values wrap upward) — which
/// gives mod-K counters for free: with `var c : 0..2;`, `c := c + 1` is
/// the paper's (+) 1. Actions keep their declared process ids; `init`
/// becomes the initial-state predicate (absent init -> no initial
/// states, i.e. a wrapper).
System compile(const SystemAst& ast);

/// Convenience: parse + compile in one call.
System load_system(const std::string& source);

}  // namespace cref::gcl
