#pragma once

// Semantic analyzer (lint) for parsed GCL systems: six diagnostic
// passes over a SystemAst, run before any state-space exploration.
// Because every variable ranges over a declared finite domain, the
// passes are EXACT, not heuristic: each property is decided by
// exhaustive evaluation over the (usually tiny) product of the domains
// of the variables an expression actually references. Expressions that
// reference more than `AnalyzeOptions::exact_budget` valuations fall
// back to a sound interval analysis and only report what the intervals
// prove.
//
// The passes, and the rules they emit (see diag.hpp for ids):
//   1. check_guards       guard-always-false (dead action),
//                         guard-always-true
//   2. check_domain_flow  assign-wraps (RHS can leave the target's
//                         domain and silently wrap; an RHS that is
//                         already reduced, e.g. by an explicit `% k`,
//                         never fires this)
//   3. check_divisors     div-by-zero, div-maybe-zero (eval() yields 0
//                         on a zero divisor — silently)
//   4. check_liveness     var-unused, var-write-only, var-never-written
//   5. check_actions      action-duplicate-name, action-stutter,
//                         action-not-self-disabling, var-multi-writer
//   6. check_init         init-unsatisfiable
//
// `analyze()` runs all six and returns the findings in reporting
// order. Tests exercise passes individually; the `gcl_lint` tool and
// `gcl_check --lint` drive `analyze()`.

#include <string>
#include <vector>

#include "gcl/ast.hpp"
#include "gcl/diag.hpp"

namespace cref::gcl {

struct AnalyzeOptions {
  /// Maximum number of valuations an exhaustive per-expression check
  /// may enumerate (product of the referenced variables' domain
  /// cardinalities). Above this, passes use interval analysis instead.
  std::size_t exact_budget = std::size_t{1} << 20;
};

std::vector<Diagnostic> check_guards(const SystemAst& ast, const AnalyzeOptions& opts = {});
std::vector<Diagnostic> check_domain_flow(const SystemAst& ast,
                                          const AnalyzeOptions& opts = {});
std::vector<Diagnostic> check_divisors(const SystemAst& ast,
                                       const AnalyzeOptions& opts = {});
std::vector<Diagnostic> check_liveness(const SystemAst& ast,
                                       const AnalyzeOptions& opts = {});
std::vector<Diagnostic> check_actions(const SystemAst& ast, const AnalyzeOptions& opts = {});
std::vector<Diagnostic> check_init(const SystemAst& ast, const AnalyzeOptions& opts = {});

/// All six passes, merged and sorted into reporting order.
std::vector<Diagnostic> analyze(const SystemAst& ast, const AnalyzeOptions& opts = {});

// --- read/write sets and cross-process interference -----------------

/// Per-action data-flow summary: which variables the action reads
/// (guard or any assignment RHS) and writes (assignment targets).
struct ActionRW {
  std::string action;
  int process = -1;
  SourceLoc loc;
  std::vector<std::size_t> reads;   // var indices, sorted ascending
  std::vector<std::size_t> writes;  // var indices, sorted ascending
};

/// Per-variable view keyed on the `@process` annotations: the distinct
/// processes whose actions write / read the variable (unannotated
/// actions, process == -1, are excluded). More than one writer process
/// is cross-process write interference (rule var-multi-writer).
struct VarInterference {
  std::size_t var_index = 0;
  std::vector<int> writer_processes;  // distinct, sorted
  std::vector<int> reader_processes;  // distinct, sorted
};

struct ReadWriteReport {
  std::vector<ActionRW> actions;     // one per action, declaration order
  std::vector<VarInterference> vars; // one per declared variable
};

ReadWriteReport read_write_report(const SystemAst& ast);

/// Human-readable rendering of the report (the `gcl_lint --sets` output).
std::string format_read_write_report(const SystemAst& ast);

/// Machine-readable rendering, as a `"sets": {...}` JSON object member
/// for splicing into diag.hpp's render_json document:
///   "sets": {"actions": [{"action", "process", "line", "column",
///            "reads", "writes"}, ...],
///            "vars": [{"var", "writer_processes",
///            "reader_processes"}, ...],
///            "cross_process_write_interference": bool}
/// reads/writes hold variable NAMES (declaration order); process is -1
/// for unannotated actions.
std::string render_read_write_report_json(const SystemAst& ast);

}  // namespace cref::gcl
