#include "gcl/alpha.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "gcl/compile.hpp"
#include "gcl/lexer.hpp"
#include "gcl/pretty.hpp"

namespace cref::gcl {

namespace {

/// Recursive-descent parser over the shared token stream; the
/// expression grammar (and precedence) is exactly parser.cpp's, with
/// variable references resolved against the CONCRETE program.
class AlphaParser {
 public:
  AlphaParser(const std::string& source, const SystemAst& c_ast, const SystemAst& a_ast)
      : toks_(lex(source)), c_(c_ast), a_(a_ast) {
    for (std::size_t i = 0; i < c_.vars.size(); ++i) c_index_[c_.vars[i].name] = i;
    for (std::size_t i = 0; i < a_.vars.size(); ++i) a_index_[a_.vars[i].name] = i;
  }

  Expr parse_expression() {
    Expr e = parse_or();
    expect(Tok::End, "end of input");
    return e;
  }

  AlphaSpec parse() {
    AlphaSpec spec;
    expect_keyword("alpha");
    spec.name = expect(Tok::Ident, "alpha name").text;
    expect(Tok::LBrace, "'{'");
    std::vector<char> defined(a_.vars.size(), 0);
    while (!at(Tok::RBrace)) {
      if (at_keyword("invariant")) {
        const Token kw = advance();
        if (spec.invariant) fail(kw, "duplicate invariant clause");
        expect(Tok::Colon, "':'");
        spec.invariant = std::make_unique<Expr>(parse_or());
        spec.invariant_loc = {kw.line, kw.column};
        expect(Tok::Semi, "';'");
        continue;
      }
      const Token name = expect(Tok::Ident, "abstract variable name");
      const auto it = a_index_.find(name.text);
      if (it == a_index_.end())
        fail(name, "'" + name.text + "' is not a variable of abstract system '" +
                       a_.name + "'");
      if (defined[it->second])
        fail(name, "abstract variable '" + name.text + "' defined twice");
      defined[it->second] = 1;
      expect(Tok::Assign, "':='");
      AlphaAssign def;
      def.var = name.text;
      def.a_index = it->second;
      def.value = parse_or();
      def.loc = {name.line, name.column};
      spec.defs.push_back(std::move(def));
      expect(Tok::Semi, "';'");
    }
    expect(Tok::RBrace, "'}'");
    expect(Tok::End, "end of input");
    for (std::size_t i = 0; i < a_.vars.size(); ++i)
      if (!defined[i])
        throw std::runtime_error("alpha: abstract variable '" + a_.vars[i].name +
                                 "' has no definition in alpha '" + spec.name + "'");
    return spec;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_keyword(const char* kw) const {
    return cur().kind == Tok::Ident && cur().text == kw;
  }
  Token advance() { return toks_[pos_++]; }

  [[noreturn]] void fail(const Token& t, const std::string& msg) const {
    std::ostringstream out;
    out << "alpha: line " << t.line << ":" << t.column << ": " << msg;
    throw std::runtime_error(out.str());
  }

  Token expect(Tok k, const char* what) {
    if (!at(k)) fail(cur(), std::string("expected ") + what);
    return advance();
  }
  void expect_keyword(const char* kw) {
    if (!at_keyword(kw)) fail(cur(), std::string("expected '") + kw + "'");
    advance();
  }

  Expr leaf(const Token& t, Op op) const {
    Expr e;
    e.op = op;
    e.loc = {t.line, t.column};
    return e;
  }
  Expr binary(Op op, const Token& t, Expr a, Expr b) const {
    Expr e;
    e.op = op;
    e.loc = {t.line, t.column};
    e.children.push_back(std::move(a));
    e.children.push_back(std::move(b));
    return e;
  }

  Expr parse_or() {
    Expr e = parse_and();
    while (at(Tok::OrOr)) {
      const Token t = advance();
      e = binary(Op::Or, t, std::move(e), parse_and());
    }
    return e;
  }
  Expr parse_and() {
    Expr e = parse_cmp();
    while (at(Tok::AndAnd)) {
      const Token t = advance();
      e = binary(Op::And, t, std::move(e), parse_cmp());
    }
    return e;
  }
  Expr parse_cmp() {
    Expr e = parse_add();
    while (at(Tok::Eq) || at(Tok::Ne) || at(Tok::Lt) || at(Tok::Le) || at(Tok::Gt) ||
           at(Tok::Ge)) {
      const Token t = advance();
      Op op = Op::Eq;
      switch (t.kind) {
        case Tok::Eq: op = Op::Eq; break;
        case Tok::Ne: op = Op::Ne; break;
        case Tok::Lt: op = Op::Lt; break;
        case Tok::Le: op = Op::Le; break;
        case Tok::Gt: op = Op::Gt; break;
        default: op = Op::Ge; break;
      }
      e = binary(op, t, std::move(e), parse_add());
    }
    return e;
  }
  Expr parse_add() {
    Expr e = parse_mul();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const Token t = advance();
      e = binary(t.kind == Tok::Plus ? Op::Add : Op::Sub, t, std::move(e), parse_mul());
    }
    return e;
  }
  Expr parse_mul() {
    Expr e = parse_unary();
    while (at(Tok::Star) || at(Tok::Percent) || at(Tok::Slash)) {
      const Token t = advance();
      const Op op = t.kind == Tok::Star    ? Op::Mul
                    : t.kind == Tok::Percent ? Op::Mod
                                             : Op::Div;
      e = binary(op, t, std::move(e), parse_unary());
    }
    return e;
  }
  Expr parse_unary() {
    if (at(Tok::Bang)) {
      const Token t = advance();
      Expr e = leaf(t, Op::Not);
      e.children.push_back(parse_unary());
      return e;
    }
    if (at(Tok::Minus)) {
      const Token t = advance();
      Expr e = leaf(t, Op::Neg);
      e.children.push_back(parse_unary());
      return e;
    }
    return parse_atom();
  }
  Expr parse_atom() {
    if (at(Tok::Number)) {
      const Token t = advance();
      Expr e = leaf(t, Op::Const);
      e.value = t.number;
      return e;
    }
    if (at(Tok::LParen)) {
      advance();
      Expr e = parse_or();
      expect(Tok::RParen, "')'");
      return e;
    }
    if (at(Tok::Ident)) {
      const Token t = advance();
      const auto it = c_index_.find(t.text);
      if (it == c_index_.end())
        fail(t, "'" + t.text + "' is not a variable of concrete system '" + c_.name +
                    "'");
      Expr e = leaf(t, Op::Var);
      e.name = t.text;
      e.var_index = it->second;
      return e;
    }
    fail(cur(), "expected an expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  const SystemAst& c_;
  const SystemAst& a_;
  std::map<std::string, std::size_t> c_index_;
  std::map<std::string, std::size_t> a_index_;
};

}  // namespace

AlphaSpec parse_alpha(const std::string& source, const SystemAst& c_ast,
                      const SystemAst& a_ast) {
  return AlphaParser(source, c_ast, a_ast).parse();
}

Expr parse_expr_over(const std::string& text, const SystemAst& ast) {
  return AlphaParser(text, ast, ast).parse_expression();
}

AlphaSpec identity_alpha(const SystemAst& c_ast, const SystemAst& a_ast) {
  AlphaSpec spec;
  spec.name = "identity";
  for (std::size_t j = 0; j < a_ast.vars.size(); ++j) {
    std::size_t ci = c_ast.vars.size();
    for (std::size_t i = 0; i < c_ast.vars.size(); ++i)
      if (c_ast.vars[i].name == a_ast.vars[j].name) {
        ci = i;
        break;
      }
    if (ci == c_ast.vars.size())
      throw std::runtime_error("alpha: identity map undefined — concrete system '" +
                               c_ast.name + "' has no variable '" + a_ast.vars[j].name +
                               "'");
    AlphaAssign def;
    def.var = a_ast.vars[j].name;
    def.a_index = j;
    Expr v;
    v.op = Op::Var;
    v.name = c_ast.vars[ci].name;
    v.var_index = ci;
    def.value = std::move(v);
    spec.defs.push_back(std::move(def));
  }
  return spec;
}

std::string print_alpha(const AlphaSpec& spec) {
  std::ostringstream out;
  out << "alpha " << spec.name << " {\n";
  for (const AlphaAssign& d : spec.defs)
    out << "  " << d.var << " := " << print_expr(d.value) << ";\n";
  if (spec.invariant)
    out << "  invariant : " << print_expr(*spec.invariant) << ";\n";
  out << "}\n";
  return out.str();
}

void alpha_image(const AlphaSpec& spec, const SystemAst& a_ast, const StateVec& s,
                 StateVec& out) {
  out.assign(a_ast.vars.size(), 0);
  for (const AlphaAssign& d : spec.defs)
    out[d.a_index] = static_cast<Value>(
        eval_mod(eval(d.value, s), a_ast.vars[d.a_index].cardinality));
}

}  // namespace cref::gcl
