#include "gcl/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace cref::gcl {

namespace {
[[noreturn]] void fail(int line, int column, const std::string& what) {
  throw std::runtime_error("gcl: line " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what);
}
}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  std::size_t line_start = 0;  // index of the first character of the current line
  const std::size_t n = source.size();
  auto col = [&]() { return static_cast<int>(i - line_start) + 1; };
  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < n ? source[i + ahead] : '\0';
  };
  auto push = [&](Tok kind, std::size_t advance) {
    out.push_back({kind, "", 0, line, col()});
    i += advance;
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      int start_col = col();
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_'))
        ++i;
      out.push_back({Tok::Ident, source.substr(start, i - start), 0, line, start_col});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      int start_col = col();
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      Token t{Tok::Number, "", 0, line, start_col};
      t.number = std::stoll(source.substr(start, i - start));
      out.push_back(t);
      continue;
    }
    switch (c) {
      case '{': push(Tok::LBrace, 1); break;
      case '}': push(Tok::RBrace, 1); break;
      case '(': push(Tok::LParen, 1); break;
      case ')': push(Tok::RParen, 1); break;
      case ';': push(Tok::Semi, 1); break;
      case ',': push(Tok::Comma, 1); break;
      case '@': push(Tok::At, 1); break;
      case '+': push(Tok::Plus, 1); break;
      case '*': push(Tok::Star, 1); break;
      case '%': push(Tok::Percent, 1); break;
      case '/': push(Tok::Slash, 1); break;
      case '.':
        if (peek(1) == '.') push(Tok::DotDot, 2);
        else fail(line, col(), "unexpected '.'");
        break;
      case ':':
        if (peek(1) == '=') push(Tok::Assign, 2);
        else push(Tok::Colon, 1);
        break;
      case '-':
        if (peek(1) == '>') push(Tok::Arrow, 2);
        else push(Tok::Minus, 1);
        break;
      case '=':
        if (peek(1) == '=') push(Tok::Eq, 2);
        else fail(line, col(), "'=' (did you mean '==' or ':='?)");
        break;
      case '!':
        if (peek(1) == '=') push(Tok::Ne, 2);
        else push(Tok::Bang, 1);
        break;
      case '<':
        if (peek(1) == '=') push(Tok::Le, 2);
        else push(Tok::Lt, 1);
        break;
      case '>':
        if (peek(1) == '=') push(Tok::Ge, 2);
        else push(Tok::Gt, 1);
        break;
      case '&':
        if (peek(1) == '&') push(Tok::AndAnd, 2);
        else fail(line, col(), "'&' (did you mean '&&'?)");
        break;
      case '|':
        if (peek(1) == '|') push(Tok::OrOr, 2);
        else fail(line, col(), "'|' (did you mean '||'?)");
        break;
      default:
        fail(line, col(), std::string("unexpected character '") + c + "'");
    }
  }
  out.push_back({Tok::End, "", 0, line, col()});
  return out;
}

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::Colon: return "':'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::At: return "'@'";
    case Tok::DotDot: return "'..'";
    case Tok::Assign: return "':='";
    case Tok::Arrow: return "'->'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Percent: return "'%'";
    case Tok::Slash: return "'/'";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Le: return "'<='";
    case Tok::Ge: return "'>='";
    case Tok::Lt: return "'<'";
    case Tok::Gt: return "'>'";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::End: return "end of input";
  }
  return "?";
}

}  // namespace cref::gcl
