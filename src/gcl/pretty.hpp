#pragma once

// Pretty-printer for GCL ASTs: the inverse of parser.hpp. Emitted text
// always re-parses, and printing is a parse fixpoint:
// print(parse(print(ast))) == print(ast). The fuzzing harness leans on
// this to drive randomly generated ASTs through the full
// lexer/parser/analyzer/compiler path (see src/fuzzing/), and gcl tools
// use it to echo programs back in canonical form.

#include <string>

#include "gcl/ast.hpp"

namespace cref::gcl {

/// Renders one expression. Binary and unary nodes are parenthesized
/// explicitly, so operator precedence never has to be reconstructed.
std::string print_expr(const Expr& e);

/// Renders a whole system declaration in the grammar of parser.hpp,
/// one declaration per line.
std::string print_system(const SystemAst& ast);

}  // namespace cref::gcl
