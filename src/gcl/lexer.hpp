#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cref::gcl {

/// Token kinds of the GCL surface syntax.
enum class Tok {
  Ident,    // names and keywords (keywords resolved by the parser)
  Number,   // decimal literal
  LBrace,   // {
  RBrace,   // }
  LParen,   // (
  RParen,   // )
  Colon,    // :
  Semi,     // ;
  Comma,    // ,
  At,       // @
  DotDot,   // ..
  Assign,   // :=
  Arrow,    // ->
  Plus,     // +
  Minus,    // -
  Star,     // *
  Percent,  // %
  Slash,    // /
  Eq,       // ==
  Ne,       // !=
  Le,       // <=
  Ge,       // >=
  Lt,       // <
  Gt,       // >
  AndAnd,   // &&
  OrOr,     // ||
  Bang,     // !
  End,      // end of input
};

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier text
  std::int64_t number = 0; // numeric value
  int line = 1;            // 1-based source line, for error messages
  int column = 1;          // 1-based column of the token's first character
};

/// Tokenizes `source`. Comments run from '#' or "//" to end of line.
/// Throws std::runtime_error with a "line L:C" position on an unexpected
/// character. The final token is always Tok::End.
std::vector<Token> lex(const std::string& source);

/// Human-readable token-kind name (diagnostics).
const char* tok_name(Tok t);

}  // namespace cref::gcl
