#pragma once

// Recursive-descent parser for the guarded-command language. Grammar:
//
//   file    := "system" IDENT "{" decl* "}"
//   decl    := "var" IDENT ":" ("bool" | NUMBER ".." NUMBER) ";"
//            | "action" IDENT ["@" NUMBER] ":" expr "->" assigns ";"
//            | "init" ":" expr ";"
//   assigns := IDENT ":=" expr ("," IDENT ":=" expr)*
//   expr    := or-expression with C precedence:
//              ||  <  &&  <  == != < <= > >=  <  + -  <  * % /  <  ! - (unary)
//
// Variable domains must start at 0 ("0..k"); `bool` is sugar for 0..1.
// Variables must be declared before use; every name resolves to its
// declaration index. Comments run from '#' or '//' to end of line.
//
// Example (Dijkstra's 3-state ring, n = 2):
//
//   system dijkstra3 {
//     var c0 : 0..2;  var c1 : 0..2;  var c2 : 0..2;
//     action top    @2 : c1 == c0 && (c1 + 1) % 3 != c2 -> c2 := (c1 + 1) % 3;
//     action bottom @0 : c1 == (c0 + 1) % 3            -> c0 := (c1 + 1) % 3;
//     action up1    @1 : c0 == (c1 + 1) % 3            -> c1 := c0;
//     action down1  @1 : c2 == (c1 + 1) % 3            -> c1 := c2;
//     init : c0 == 1 && c1 == 0 && c2 == 0;
//   }

#include <string>

#include "gcl/ast.hpp"

namespace cref::gcl {

/// Parses a GCL source text into an AST. Throws std::runtime_error with
/// a "line L:C" source position on any lexical, syntactic, or resolution
/// error (unknown variable, duplicate declaration, non-zero domain base,
/// empty or out-of-range domain, ...). Every AST node carries its
/// SourceLoc so downstream diagnostics (see analyze.hpp) can point at
/// the offending token.
SystemAst parse(const std::string& source);

}  // namespace cref::gcl
