#include "gcl/sarif.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace cref::gcl {

namespace {

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "none";
}

}  // namespace

std::string render_sarif(const std::vector<Diagnostic>& diags,
                         const std::string& tool_name, const std::string& file) {
  // The rule catalog lists exactly the rules this run produced, in
  // first-appearance order of the sorted findings, so the document
  // stays small and every result's ruleIndex is valid.
  std::vector<Diagnostic> sorted = diags;
  sort_diagnostics(sorted);
  std::vector<const char*> rules;
  auto rule_index = [&](Rule r) -> std::size_t {
    const char* id = rule_id(r);
    for (std::size_t i = 0; i < rules.size(); ++i)
      if (rules[i] == id) return i;
    rules.push_back(id);
    return rules.size() - 1;
  };
  // Pre-pass to build the catalog in result order.
  for (const Diagnostic& d : sorted) rule_index(d.rule);

  std::ostringstream out;
  out << "{\"version\": \"2.1.0\", "
      << "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", "
      << "\"runs\": [{\"tool\": {\"driver\": {\"name\": \""
      << json_escape(tool_name)
      << "\", \"informationUri\": \"https://github.com/cref/cref\", "
      << "\"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) out << ", ";
    out << "{\"id\": \"" << rules[i] << "\", \"name\": \"" << rules[i] << "\"}";
  }
  out << "]}}, \"artifacts\": [{\"location\": {\"uri\": \"" << json_escape(file)
      << "\"}}], \"results\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Diagnostic& d = sorted[i];
    if (i) out << ", ";
    out << "{\"ruleId\": \"" << rule_id(d.rule)
        << "\", \"ruleIndex\": " << rule_index(d.rule) << ", \"level\": \""
        << sarif_level(d.severity) << "\", \"message\": {\"text\": \""
        << json_escape(d.hint.empty() ? d.message : d.message + " (hint: " + d.hint + ")")
        << "\"}";
    if (d.loc.line > 0) {
      out << ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          << "{\"uri\": \"" << json_escape(file) << "\", \"index\": 0}, "
          << "\"region\": {\"startLine\": " << d.loc.line;
      if (d.loc.column > 0) out << ", \"startColumn\": " << d.loc.column;
      out << "}}}]";
    }
    out << "}";
  }
  out << "]}]}\n";
  return out.str();
}

}  // namespace cref::gcl
