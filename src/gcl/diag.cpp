#include "gcl/diag.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <tuple>

namespace cref::gcl {

const char* rule_id(Rule r) {
  switch (r) {
    case Rule::ParseError: return "parse-error";
    case Rule::GuardAlwaysFalse: return "guard-always-false";
    case Rule::GuardAlwaysTrue: return "guard-always-true";
    case Rule::AssignWraps: return "assign-wraps";
    case Rule::DivByZero: return "div-by-zero";
    case Rule::DivMaybeZero: return "div-maybe-zero";
    case Rule::VarUnused: return "var-unused";
    case Rule::VarWriteOnly: return "var-write-only";
    case Rule::VarNeverWritten: return "var-never-written";
    case Rule::ActionDuplicateName: return "action-duplicate-name";
    case Rule::ActionStutter: return "action-stutter";
    case Rule::ActionNotSelfDisabling: return "action-not-self-disabling";
    case Rule::VarMultiWriter: return "var-multi-writer";
    case Rule::InitUnsatisfiable: return "init-unsatisfiable";
    case Rule::AbsintUnreachableAction: return "absint-unreachable-action";
    case Rule::AbsintGuardDead: return "absint-guard-dead";
    case Rule::AbsintVarConstant: return "absint-var-constant";
    case Rule::AbsintInitNotClosed: return "absint-init-not-closed";
    case Rule::WrapperWritesForeignVar: return "wrapper-writes-foreign-var";
    case Rule::WrapperNonterminating: return "wrapper-nonterminating";
    case Rule::ProveNotProved: return "prove-not-proved";
    case Rule::RefineRefuted: return "refine-refuted";
    case Rule::RefineUnknown: return "refine-unknown";
  }
  return "unknown";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

bool Diagnostic::operator<(const Diagnostic& o) const {
  // Errors before warnings before notes at the same position.
  int sev = -static_cast<int>(severity), osev = -static_cast<int>(o.severity);
  return std::tie(loc.line, loc.column, sev, message) <
         std::tie(o.loc.line, o.loc.column, osev, o.message);
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end());
}

DiagCounts count_diagnostics(const std::vector<Diagnostic>& diags) {
  DiagCounts c;
  for (const Diagnostic& d : diags) {
    switch (d.severity) {
      case Severity::Note: ++c.notes; break;
      case Severity::Warning: ++c.warnings; break;
      case Severity::Error: ++c.errors; break;
    }
  }
  return c;
}

bool should_fail(const std::vector<Diagnostic>& diags, bool werror) {
  DiagCounts c = count_diagnostics(diags);
  return c.errors > 0 || (werror && c.warnings > 0);
}

std::string render_text(const std::vector<Diagnostic>& diags, const std::string& file) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << file;
    if (d.loc.line > 0) {
      out << ':' << d.loc.line;
      if (d.loc.column > 0) out << ':' << d.loc.column;
    }
    out << ": " << severity_name(d.severity) << ": " << d.message << " ["
        << rule_id(d.rule) << "]\n";
    if (!d.hint.empty()) out << "    hint: " << d.hint << "\n";
  }
  DiagCounts c = count_diagnostics(diags);
  if (diags.empty()) {
    out << file << ": clean (no findings)\n";
  } else {
    out << file << ": " << c.errors << " error(s), " << c.warnings << " warning(s), "
        << c.notes << " note(s)\n";
  }
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diags, const std::string& file) {
  return render_json(diags, file, std::string());
}

std::string render_json(const std::vector<Diagnostic>& diags, const std::string& file,
                        const std::string& extra_members) {
  std::ostringstream out;
  out << "{\"file\": \"" << json_escape(file) << "\", ";
  if (!extra_members.empty()) out << extra_members << ", ";
  out << "\"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i) out << ", ";
    out << "{\"rule\": \"" << rule_id(d.rule) << "\", \"severity\": \""
        << severity_name(d.severity) << "\", \"line\": " << d.loc.line
        << ", \"column\": " << d.loc.column << ", \"message\": \""
        << json_escape(d.message) << "\", \"hint\": \"" << json_escape(d.hint)
        << "\"}";
  }
  DiagCounts c = count_diagnostics(diags);
  out << "], \"counts\": {\"errors\": " << c.errors << ", \"warnings\": " << c.warnings
      << ", \"notes\": " << c.notes << "}}\n";
  return out.str();
}

Diagnostic parse_error_diagnostic(const std::string& what) {
  Diagnostic d;
  d.rule = Rule::ParseError;
  d.severity = Severity::Error;
  d.message = what;
  d.hint = "the file must parse before semantic analysis can run";
  const std::string tag = "line ";
  std::size_t at = what.find(tag);
  if (at != std::string::npos) {
    const char* p = what.c_str() + at + tag.size();
    char* end = nullptr;
    long line = std::strtol(p, &end, 10);
    if (end != p && line > 0) {
      d.loc.line = static_cast<int>(line);
      if (*end == ':') {
        const char* q = end + 1;
        long column = std::strtol(q, &end, 10);
        if (end != q && column > 0) d.loc.column = static_cast<int>(column);
      }
      // Strip the position prefix; the renderer re-adds FILE:LINE:COL.
      if (*end == ':' && end[1] == ' ') d.message = end + 2;
    }
  }
  return d;
}

}  // namespace cref::gcl
