#include "gcl/pretty.hpp"

#include <stdexcept>

namespace cref::gcl {

namespace {

const char* op_token(Op op) {
  switch (op) {
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mul: return "*";
    case Op::Mod: return "%";
    case Op::Div: return "/";
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::And: return "&&";
    case Op::Or: return "||";
    default: throw std::logic_error("print_expr: not a binary operator");
  }
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.op) {
    case Op::Const: return std::to_string(e.value);
    case Op::Var: return e.name;
    case Op::Not: return "(!" + print_expr(e.children.at(0)) + ")";
    case Op::Neg: return "(-" + print_expr(e.children.at(0)) + ")";
    default:
      return "(" + print_expr(e.children.at(0)) + " " + op_token(e.op) + " " +
             print_expr(e.children.at(1)) + ")";
  }
}

std::string print_system(const SystemAst& ast) {
  std::string out = "system " + ast.name + " {\n";
  for (const VarDeclAst& v : ast.vars)
    out += "  var " + v.name + " : 0.." + std::to_string(v.cardinality - 1) + ";\n";
  for (const ActionAst& a : ast.actions) {
    out += "  action " + a.name;
    if (a.process >= 0) out += " @" + std::to_string(a.process);
    out += " : " + print_expr(a.guard) + " ->";
    for (std::size_t i = 0; i < a.assignments.size(); ++i) {
      out += i ? ", " : " ";
      out += a.assignments[i].var + " := " + print_expr(a.assignments[i].value);
    }
    out += ";\n";
  }
  if (ast.init) out += "  init : " + print_expr(*ast.init) + ";\n";
  out += "}\n";
  return out;
}

}  // namespace cref::gcl
