#pragma once

// Abstract syntax of the guarded-command language (GCL) in which the
// paper writes its systems. A file declares one system: variables with
// finite domains, guarded actions, and an optional initial-state
// predicate. See parser.hpp for the grammar, compile.hpp for the
// translation to a cref::System, and analyze.hpp for the semantic
// lint passes over this AST.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cref::gcl {

/// 1-based source position of an AST node (0 = unknown, e.g. for
/// programmatically built trees). The parser fills these in so the
/// semantic analyzer can point diagnostics at the offending token.
struct SourceLoc {
  int line = 0;
  int column = 0;
};

/// Expression operators (precedence is handled by the parser).
enum class Op {
  Const,  // integer literal             (value)
  Var,    // variable reference          (name, resolved to index)
  Not,    // !a
  Neg,    // -a
  Add,    // a + b
  Sub,    // a - b
  Mul,    // a * b
  Mod,    // a % b
  Div,    // a / b
  Eq,     // a == b
  Ne,     // a != b
  Lt,     // a < b
  Le,     // a <= b
  Gt,     // a > b
  Ge,     // a >= b
  And,    // a && b
  Or,     // a || b
};

/// Expression tree node. Integer semantics throughout; comparisons and
/// logical operators yield 0/1, and any nonzero value is truthy.
struct Expr {
  Op op = Op::Const;
  std::int64_t value = 0;         // Op::Const
  std::string name;               // Op::Var (display)
  std::size_t var_index = 0;      // Op::Var (resolved by the parser)
  std::vector<Expr> children;     // operands
  SourceLoc loc;                  // leaf: the token; binary: the operator

  static Expr constant(std::int64_t v) {
    Expr e;
    e.op = Op::Const;
    e.value = v;
    return e;
  }
};

/// `x := expr`. All assignments of an action are evaluated against the
/// OLD state, then written (guarded-command multiple assignment).
struct AssignmentAst {
  std::string var;
  std::size_t var_index = 0;
  Expr value;
  SourceLoc loc;  // the target variable token
};

/// `action name @process : guard -> assignments ;`
struct ActionAst {
  std::string name;
  int process = -1;
  Expr guard;
  std::vector<AssignmentAst> assignments;
  SourceLoc loc;  // the action name token
};

/// `var name : 0..k;` or `var name : bool;`
struct VarDeclAst {
  std::string name;
  int cardinality = 2;
  SourceLoc loc;  // the variable name token
};

/// A whole `system NAME { ... }` declaration.
struct SystemAst {
  std::string name;
  std::vector<VarDeclAst> vars;
  std::vector<ActionAst> actions;
  std::unique_ptr<Expr> init;  // null if the system declares no initial states
  SourceLoc init_loc;          // the `init` keyword (when init != null)
};

}  // namespace cref::gcl
