#pragma once

// Abstract syntax of the guarded-command language (GCL) in which the
// paper writes its systems. A file declares one system: variables with
// finite domains, guarded actions, and an optional initial-state
// predicate. See parser.hpp for the grammar and compile.hpp for the
// translation to a cref::System.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cref::gcl {

/// Expression operators (precedence is handled by the parser).
enum class Op {
  Const,  // integer literal             (value)
  Var,    // variable reference          (name, resolved to index)
  Not,    // !a
  Neg,    // -a
  Add,    // a + b
  Sub,    // a - b
  Mul,    // a * b
  Mod,    // a % b
  Div,    // a / b
  Eq,     // a == b
  Ne,     // a != b
  Lt,     // a < b
  Le,     // a <= b
  Gt,     // a > b
  Ge,     // a >= b
  And,    // a && b
  Or,     // a || b
};

/// Expression tree node. Integer semantics throughout; comparisons and
/// logical operators yield 0/1, and any nonzero value is truthy.
struct Expr {
  Op op = Op::Const;
  std::int64_t value = 0;         // Op::Const
  std::string name;               // Op::Var (display)
  std::size_t var_index = 0;      // Op::Var (resolved by the parser)
  std::vector<Expr> children;     // operands

  static Expr constant(std::int64_t v) {
    Expr e;
    e.op = Op::Const;
    e.value = v;
    return e;
  }
};

/// `x := expr`. All assignments of an action are evaluated against the
/// OLD state, then written (guarded-command multiple assignment).
struct AssignmentAst {
  std::string var;
  std::size_t var_index = 0;
  Expr value;
};

/// `action name @process : guard -> assignments ;`
struct ActionAst {
  std::string name;
  int process = -1;
  Expr guard;
  std::vector<AssignmentAst> assignments;
};

/// `var name : 0..k;` or `var name : bool;`
struct VarDeclAst {
  std::string name;
  int cardinality = 2;
};

/// A whole `system NAME { ... }` declaration.
struct SystemAst {
  std::string name;
  std::vector<VarDeclAst> vars;
  std::vector<ActionAst> actions;
  std::unique_ptr<Expr> init;  // null if the system declares no initial states
};

}  // namespace cref::gcl
