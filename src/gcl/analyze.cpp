#include "gcl/analyze.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "gcl/compile.hpp"

namespace cref::gcl {

namespace {

std::vector<int> cards_of(const SystemAst& ast) {
  std::vector<int> cards;
  cards.reserve(ast.vars.size());
  for (const VarDeclAst& v : ast.vars) cards.push_back(v.cardinality);
  return cards;
}

void collect_vars(const Expr& e, std::vector<char>& used) {
  if (e.op == Op::Var && e.var_index < used.size()) used[e.var_index] = 1;
  for (const Expr& c : e.children) collect_vars(c, used);
}

std::vector<std::size_t> used_list(const std::vector<char>& used) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < used.size(); ++i)
    if (used[i]) out.push_back(i);
  return out;
}

/// Product of the referenced domains, saturating at cap + 1.
std::size_t valuation_count(const std::vector<std::size_t>& vars,
                            const std::vector<int>& cards, std::size_t cap) {
  std::size_t p = 1;
  for (std::size_t v : vars) {
    p *= static_cast<std::size_t>(cards[v]);
    if (p > cap) return cap + 1;
  }
  return p;
}

/// Odometer over the listed variables; every other variable stays 0
/// (sound: callers only evaluate expressions over the listed vars).
/// `fn` returns false to stop early.
template <class Fn>
void for_each_valuation(const std::vector<std::size_t>& vars,
                        const std::vector<int>& cards, StateVec& s, Fn&& fn) {
  for (std::size_t v : vars) s[v] = 0;
  while (true) {
    if (!fn(s)) return;
    std::size_t k = 0;
    for (; k < vars.size(); ++k) {
      std::size_t v = vars[k];
      if (static_cast<int>(++s[v]) < cards[v]) break;
      s[v] = 0;
    }
    if (k == vars.size()) return;
  }
}

std::string format_valuation(const std::vector<std::size_t>& vars, const StateVec& s,
                             const SystemAst& ast) {
  std::ostringstream out;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i) out << ", ";
    out << ast.vars[vars[i]].name << "=" << static_cast<int>(s[vars[i]]);
  }
  return out.str();
}

// --- interval analysis (fallback above the exact budget) -------------

struct Interval {
  std::int64_t lo = 0, hi = 0;
  bool surely_true() const { return lo > 0 || hi < 0; }  // 0 not in range
  bool surely_false() const { return lo == 0 && hi == 0; }
};

Interval interval_eval(const Expr& e, const std::vector<int>& cards) {
  auto iv = [&](int i) { return interval_eval(e.children[i], cards); };
  switch (e.op) {
    case Op::Const: return {e.value, e.value};
    case Op::Var: return {0, cards[e.var_index] - 1};
    case Op::Not: {
      Interval a = iv(0);
      if (a.surely_false()) return {1, 1};
      if (a.surely_true()) return {0, 0};
      return {0, 1};
    }
    case Op::Neg: {
      Interval a = iv(0);
      return {-a.hi, -a.lo};
    }
    case Op::Add: {
      Interval a = iv(0), b = iv(1);
      return {a.lo + b.lo, a.hi + b.hi};
    }
    case Op::Sub: {
      Interval a = iv(0), b = iv(1);
      return {a.lo - b.hi, a.hi - b.lo};
    }
    case Op::Mul: {
      Interval a = iv(0), b = iv(1);
      std::int64_t c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
      return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
    }
    case Op::Mod: {
      Interval a = iv(0), b = iv(1);
      std::int64_t m = std::max(std::llabs(b.lo), std::llabs(b.hi));
      if (m == 0) return {0, 0};  // divisor surely 0: eval yields 0
      // Already-reduced operand: a in [0, k) for every possible k.
      if (b.lo > 0 && a.lo >= 0 && a.hi < b.lo) return a;
      return {0, m - 1};
    }
    case Op::Div: {
      Interval a = iv(0), b = iv(1);
      std::vector<std::int64_t> cand;
      if (b.lo <= 0 && 0 <= b.hi) cand.push_back(0);  // zero divisor -> 0
      for (std::int64_t d : {b.lo, b.hi, std::int64_t{1}, std::int64_t{-1}}) {
        if (d == 0 || d < b.lo || d > b.hi) continue;
        cand.push_back(eval_div(a.lo, d));
        cand.push_back(eval_div(a.hi, d));
      }
      if (cand.empty()) return {0, 0};
      return {*std::min_element(cand.begin(), cand.end()),
              *std::max_element(cand.begin(), cand.end())};
    }
    case Op::Eq: {
      Interval a = iv(0), b = iv(1);
      if (a.lo == a.hi && a.lo == b.lo && b.lo == b.hi) return {1, 1};
      if (a.hi < b.lo || b.hi < a.lo) return {0, 0};
      return {0, 1};
    }
    case Op::Ne: {
      Interval a = iv(0), b = iv(1);
      if (a.lo == a.hi && a.lo == b.lo && b.lo == b.hi) return {0, 0};
      if (a.hi < b.lo || b.hi < a.lo) return {1, 1};
      return {0, 1};
    }
    case Op::Lt: {
      Interval a = iv(0), b = iv(1);
      if (a.hi < b.lo) return {1, 1};
      if (a.lo >= b.hi) return {0, 0};
      return {0, 1};
    }
    case Op::Le: {
      Interval a = iv(0), b = iv(1);
      if (a.hi <= b.lo) return {1, 1};
      if (a.lo > b.hi) return {0, 0};
      return {0, 1};
    }
    case Op::Gt: {
      Interval a = iv(0), b = iv(1);
      if (a.lo > b.hi) return {1, 1};
      if (a.hi <= b.lo) return {0, 0};
      return {0, 1};
    }
    case Op::Ge: {
      Interval a = iv(0), b = iv(1);
      if (a.lo >= b.hi) return {1, 1};
      if (a.hi < b.lo) return {0, 0};
      return {0, 1};
    }
    case Op::And: {
      Interval a = iv(0), b = iv(1);
      if (a.surely_false() || b.surely_false()) return {0, 0};
      if (a.surely_true() && b.surely_true()) return {1, 1};
      return {0, 1};
    }
    case Op::Or: {
      Interval a = iv(0), b = iv(1);
      if (a.surely_true() || b.surely_true()) return {1, 1};
      if (a.surely_false() && b.surely_false()) return {0, 0};
      return {0, 1};
    }
  }
  return {0, 0};
}

std::string domain_str(int card) { return "0.." + std::to_string(card - 1); }

}  // namespace

// --- pass 1: guard satisfiability -----------------------------------

std::vector<Diagnostic> check_guards(const SystemAst& ast, const AnalyzeOptions& opts) {
  std::vector<Diagnostic> out;
  std::vector<int> cards = cards_of(ast);
  StateVec s(cards.size(), 0);
  for (const ActionAst& a : ast.actions) {
    std::vector<char> used(cards.size(), 0);
    collect_vars(a.guard, used);
    std::vector<std::size_t> vars = used_list(used);
    bool any_true = false, any_false = false;
    if (valuation_count(vars, cards, opts.exact_budget) <= opts.exact_budget) {
      for_each_valuation(vars, cards, s, [&](const StateVec& st) {
        (eval(a.guard, st) != 0 ? any_true : any_false) = true;
        return !(any_true && any_false);
      });
    } else {
      Interval g = interval_eval(a.guard, cards);
      if (!g.surely_false() && !g.surely_true()) continue;  // undecided
      any_true = !g.surely_false();
      any_false = !g.surely_true();
    }
    if (!any_true) {
      out.push_back({Rule::GuardAlwaysFalse, Severity::Warning, a.loc,
                     "guard of action '" + a.name +
                         "' is always false: the action can never fire (dead action)",
                     "check the comparisons against the declared domains, or delete "
                     "the action"});
    } else if (!any_false) {
      out.push_back({Rule::GuardAlwaysTrue, Severity::Note, a.loc,
                     "guard of action '" + a.name +
                         "' is always true: the action is enabled in every state",
                     "fine for an unconditional step; otherwise strengthen the guard"});
    }
  }
  return out;
}

// --- pass 2: domain flow (silent wrap on assignment) -----------------

std::vector<Diagnostic> check_domain_flow(const SystemAst& ast,
                                          const AnalyzeOptions& opts) {
  std::vector<Diagnostic> out;
  std::vector<int> cards = cards_of(ast);
  StateVec s(cards.size(), 0);
  for (const ActionAst& a : ast.actions) {
    for (const AssignmentAst& asg : a.assignments) {
      int card = cards[asg.var_index];
      std::vector<char> used(cards.size(), 0);
      collect_vars(a.guard, used);  // guard-aware: only enabled states matter
      collect_vars(asg.value, used);
      std::vector<std::size_t> vars = used_list(used);
      if (valuation_count(vars, cards, opts.exact_budget) <= opts.exact_budget) {
        bool any = false;
        std::int64_t mn = 0, mx = 0;
        for_each_valuation(vars, cards, s, [&](const StateVec& st) {
          if (eval(a.guard, st) == 0) return true;
          std::int64_t v = eval(asg.value, st);
          if (!any) {
            mn = mx = v;
            any = true;
          } else {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
          }
          return true;
        });
        if (!any) continue;  // dead action: reported by check_guards
        if (mn >= 0 && mx < card) continue;
        out.push_back(
            {Rule::AssignWraps, Severity::Warning, asg.loc,
             "assignment to '" + asg.var + "' (domain " + domain_str(card) +
                 ") evaluates to values in [" + std::to_string(mn) + ".." +
                 std::to_string(mx) + "] when enabled; out-of-domain values "
                 "silently wrap modulo " + std::to_string(card),
             "write the reduction explicitly ('" + asg.var + " := (...) % " +
                 std::to_string(card) +
                 "') if a mod-" + std::to_string(card) +
                 " counter is intended, or tighten the guard"});
      } else {
        Interval v = interval_eval(asg.value, cards);
        if (v.lo >= 0 && v.hi < card) continue;
        out.push_back(
            {Rule::AssignWraps, Severity::Warning, asg.loc,
             "assignment to '" + asg.var + "' (domain " + domain_str(card) +
                 ") may evaluate outside the domain (interval bound [" +
                 std::to_string(v.lo) + ".." + std::to_string(v.hi) +
                 "]) and silently wrap modulo " + std::to_string(card),
             "write the reduction explicitly with '% " + std::to_string(card) + "'"});
      }
    }
  }
  return out;
}

// --- pass 3: possibly-zero divisors ---------------------------------

namespace {

struct DivisorScan {
  const SystemAst& ast;
  const AnalyzeOptions& opts;
  std::vector<int> cards;
  StateVec s;
  std::vector<Diagnostic> out;

  explicit DivisorScan(const SystemAst& a, const AnalyzeOptions& o)
      : ast(a), opts(o), cards(cards_of(a)), s(cards.size(), 0) {}

  // Walks `e`; `guard` (may be null) restricts RHS checks to states
  // where the enclosing action is enabled.
  void walk(const Expr& e, const Expr* guard, const std::string& ctx) {
    for (const Expr& c : e.children) walk(c, guard, ctx);
    if (e.op != Op::Div && e.op != Op::Mod) return;
    const Expr& divisor = e.children[1];
    const char* sym = e.op == Op::Div ? "/" : "%";
    std::vector<char> used(cards.size(), 0);
    collect_vars(divisor, used);
    if (guard) collect_vars(*guard, used);
    std::vector<std::size_t> vars = used_list(used);
    if (valuation_count(vars, cards, opts.exact_budget) <= opts.exact_budget) {
      bool any_zero = false, any_nonzero = false, any_enabled = false;
      std::string witness;
      for_each_valuation(vars, cards, s, [&](const StateVec& st) {
        if (guard && eval(*guard, st) == 0) return true;
        any_enabled = true;
        if (eval(divisor, st) == 0) {
          if (!any_zero) witness = format_valuation(vars, st, ast);
          any_zero = true;
        } else {
          any_nonzero = true;
        }
        return !(any_zero && any_nonzero);
      });
      if (!any_enabled || !any_zero) return;
      if (!any_nonzero) {
        out.push_back({Rule::DivByZero, Severity::Error, e.loc,
                       "divisor of '" + std::string(sym) + "' in " + ctx +
                           " is always 0; the operation evaluates to 0 by convention",
                       "fix the divisor expression — a constant-zero divisor is "
                       "never what was meant"});
      } else {
        std::string where = witness.empty() ? "" : " (e.g. when " + witness + ")";
        out.push_back({Rule::DivMaybeZero, Severity::Warning, e.loc,
                       "divisor of '" + std::string(sym) + "' in " + ctx +
                           " can be 0" + where +
                           "; the operation then silently evaluates to 0",
                       "guard the division (add 'd != 0' to the guard) or shift "
                       "the divisor's domain away from 0"});
      }
    } else {
      Interval d = interval_eval(divisor, cards);
      if (d.surely_false()) {
        out.push_back({Rule::DivByZero, Severity::Error, e.loc,
                       "divisor of '" + std::string(sym) + "' in " + ctx +
                           " is always 0; the operation evaluates to 0 by convention",
                       "fix the divisor expression"});
      } else if (d.lo <= 0 && 0 <= d.hi) {
        out.push_back({Rule::DivMaybeZero, Severity::Warning, e.loc,
                       "divisor of '" + std::string(sym) + "' in " + ctx +
                           " may be 0 (interval bound [" + std::to_string(d.lo) +
                           ".." + std::to_string(d.hi) +
                           "]); the operation then silently evaluates to 0",
                       "guard the division or shift the divisor's domain away "
                       "from 0"});
      }
    }
  }
};

}  // namespace

std::vector<Diagnostic> check_divisors(const SystemAst& ast, const AnalyzeOptions& opts) {
  DivisorScan scan(ast, opts);
  for (const ActionAst& a : ast.actions) {
    scan.walk(a.guard, nullptr, "the guard of action '" + a.name + "'");
    for (const AssignmentAst& asg : a.assignments)
      scan.walk(asg.value, &a.guard,
                "the assignment to '" + asg.var + "' in action '" + a.name + "'");
  }
  if (ast.init) scan.walk(*ast.init, nullptr, "the init predicate");
  return scan.out;
}

// --- pass 4: variable liveness --------------------------------------

namespace {

/// True when the action's guard is provably unsatisfiable (same
/// decision procedure as check_guards' guard-always-false: exhaustive
/// under the budget, interval bound above it).
bool guard_provably_false(const ActionAst& a, const std::vector<int>& cards,
                          const AnalyzeOptions& opts, StateVec& s) {
  std::vector<char> used(cards.size(), 0);
  collect_vars(a.guard, used);
  std::vector<std::size_t> vars = used_list(used);
  if (valuation_count(vars, cards, opts.exact_budget) <= opts.exact_budget) {
    bool any_true = false;
    for_each_valuation(vars, cards, s, [&](const StateVec& st) {
      any_true = eval(a.guard, st) != 0;
      return !any_true;
    });
    return !any_true;
  }
  return interval_eval(a.guard, cards).surely_false();
}

}  // namespace

std::vector<Diagnostic> check_liveness(const SystemAst& ast, const AnalyzeOptions& opts) {
  std::vector<Diagnostic> out;
  std::vector<int> cards = cards_of(ast);
  StateVec scratch(cards.size(), 0);
  std::vector<char> read(ast.vars.size(), 0), written(ast.vars.size(), 0);
  for (const ActionAst& a : ast.actions) {
    // A provably-dead action (guard-always-false, reported by
    // check_guards) contributes no reads or writes: a variable
    // referenced only there is as unused as if the action were deleted.
    if (guard_provably_false(a, cards, opts, scratch)) continue;
    collect_vars(a.guard, read);
    for (const AssignmentAst& asg : a.assignments) {
      collect_vars(asg.value, read);
      if (asg.var_index < written.size()) written[asg.var_index] = 1;
    }
  }
  if (ast.init) collect_vars(*ast.init, read);
  for (std::size_t i = 0; i < ast.vars.size(); ++i) {
    const VarDeclAst& v = ast.vars[i];
    if (!read[i] && !written[i]) {
      out.push_back({Rule::VarUnused, Severity::Warning, v.loc,
                     "variable '" + v.name + "' is never read or written",
                     "delete the declaration (each variable multiplies the state "
                     "space by its cardinality)"});
    } else if (written[i] && !read[i]) {
      out.push_back({Rule::VarWriteOnly, Severity::Warning, v.loc,
                     "variable '" + v.name +
                         "' is written but never read; its value cannot influence "
                         "any guard, assignment, or init",
                     "read it somewhere, or remove the writes and the declaration"});
    } else if (read[i] && !written[i]) {
      out.push_back({Rule::VarNeverWritten, Severity::Note, v.loc,
                     "variable '" + v.name +
                         "' is read but never assigned by any action; it is frozen "
                         "at whatever value the initial state gives it",
                     "fine for a constant parameter; otherwise add a writer"});
    }
  }
  return out;
}

// --- pass 5: action hygiene -----------------------------------------

std::vector<Diagnostic> check_actions(const SystemAst& ast, const AnalyzeOptions& opts) {
  std::vector<Diagnostic> out;
  std::vector<int> cards = cards_of(ast);
  StateVec s(cards.size(), 0);

  // Duplicate names.
  std::map<std::string, const ActionAst*> first_decl;
  for (const ActionAst& a : ast.actions) {
    auto [it, inserted] = first_decl.emplace(a.name, &a);
    if (!inserted) {
      out.push_back({Rule::ActionDuplicateName, Severity::Warning, a.loc,
                     "duplicate action name '" + a.name + "' (first declared at line " +
                         std::to_string(it->second->loc.line) + ")",
                     "rename one of the actions; names identify actions in traces "
                     "and reports"});
    }
  }

  // Stutter and self-disabling, decided by one exhaustive walk each.
  for (const ActionAst& a : ast.actions) {
    std::vector<char> used(cards.size(), 0);
    collect_vars(a.guard, used);
    for (const AssignmentAst& asg : a.assignments) {
      collect_vars(asg.value, used);
      if (asg.var_index < used.size()) used[asg.var_index] = 1;
    }
    std::vector<std::size_t> vars = used_list(used);
    if (valuation_count(vars, cards, opts.exact_budget) > opts.exact_budget)
      continue;  // above the exact budget: these two rules stay silent

    bool any_enabled = false, all_identity = true;
    std::string re_witness;
    StateVec post;
    std::vector<std::int64_t> values;
    for_each_valuation(vars, cards, s, [&](const StateVec& st) {
      if (eval(a.guard, st) == 0) return true;
      any_enabled = true;
      // Apply the multiple assignment against the old state, with the
      // compiler's modular reduction into each target's domain.
      values.clear();
      for (const AssignmentAst& asg : a.assignments)
        values.push_back(eval(asg.value, st));
      post = st;
      for (std::size_t i = 0; i < a.assignments.size(); ++i) {
        std::size_t tgt = a.assignments[i].var_index;
        post[tgt] = static_cast<Value>(eval_mod(values[i], cards[tgt]));
      }
      if (post != st) all_identity = false;
      if (re_witness.empty() && eval(a.guard, post) != 0)
        re_witness = format_valuation(vars, st, ast);
      return !(!all_identity && !re_witness.empty());  // both facts known
    });

    if (!any_enabled) continue;  // dead action: reported by check_guards
    if (all_identity) {
      out.push_back({Rule::ActionStutter, Severity::Warning, a.loc,
                     "action '" + a.name +
                         "' is a stutter: its effect is provably the identity in "
                         "every state where the guard holds",
                     "the action never changes the state; remove it or fix its "
                     "assignments"});
    } else if (!re_witness.empty()) {
      out.push_back({Rule::ActionNotSelfDisabling, Severity::Warning, a.loc,
                     "action '" + a.name +
                         "' does not disable itself: the guard still holds "
                         "immediately after its own effect (e.g. from " +
                         re_witness + "); under an unfair daemon it can be "
                         "scheduled forever and starve every other action",
                     "make each firing falsify the guard, or confirm the "
                     "potential livelock is intended"});
    }
  }

  // Cross-process write interference, keyed on @process annotations.
  ReadWriteReport rw = read_write_report(ast);
  for (const VarInterference& vi : rw.vars) {
    if (vi.writer_processes.size() < 2) continue;
    std::ostringstream procs;
    for (std::size_t i = 0; i < vi.writer_processes.size(); ++i)
      procs << (i ? ", " : "") << vi.writer_processes[i];
    const VarDeclAst& v = ast.vars[vi.var_index];
    out.push_back({Rule::VarMultiWriter, Severity::Warning, v.loc,
                   "variable '" + v.name + "' is written by actions of " +
                       std::to_string(vi.writer_processes.size()) +
                       " distinct processes ({" + procs.str() +
                       "}); cross-process write interference",
                   "give each variable a single owner process (cross-process "
                   "reads are the normal communication pattern; writes are not)"});
  }
  return out;
}

// --- pass 6: init satisfiability ------------------------------------

std::vector<Diagnostic> check_init(const SystemAst& ast, const AnalyzeOptions& opts) {
  std::vector<Diagnostic> out;
  if (!ast.init) return out;  // wrapper: no initial states by design
  std::vector<int> cards = cards_of(ast);
  StateVec s(cards.size(), 0);
  std::vector<char> used(cards.size(), 0);
  collect_vars(*ast.init, used);
  std::vector<std::size_t> vars = used_list(used);
  bool any_true = false;
  if (valuation_count(vars, cards, opts.exact_budget) <= opts.exact_budget) {
    for_each_valuation(vars, cards, s, [&](const StateVec& st) {
      any_true = eval(*ast.init, st) != 0;
      return !any_true;
    });
  } else {
    Interval g = interval_eval(*ast.init, cards);
    if (!g.surely_false()) return out;  // undecided or satisfiable
  }
  if (!any_true) {
    out.push_back({Rule::InitUnsatisfiable, Severity::Error, ast.init_loc,
                   "the init predicate is unsatisfiable: no state satisfies it, so "
                   "the system has no initial states",
                   "fix the predicate; for a wrapper (no initial states) delete "
                   "the init declaration instead"});
  }
  return out;
}

// --- all passes ------------------------------------------------------

std::vector<Diagnostic> analyze(const SystemAst& ast, const AnalyzeOptions& opts) {
  std::vector<Diagnostic> out = check_guards(ast, opts);
  auto append = [&out](std::vector<Diagnostic> v) {
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  };
  append(check_domain_flow(ast, opts));
  append(check_divisors(ast, opts));
  append(check_liveness(ast, opts));
  append(check_actions(ast, opts));
  append(check_init(ast, opts));
  sort_diagnostics(out);
  return out;
}

// --- read/write sets and interference -------------------------------

ReadWriteReport read_write_report(const SystemAst& ast) {
  ReadWriteReport report;
  std::vector<std::set<int>> writers(ast.vars.size()), readers(ast.vars.size());
  for (const ActionAst& a : ast.actions) {
    std::vector<char> reads(ast.vars.size(), 0), writes(ast.vars.size(), 0);
    collect_vars(a.guard, reads);
    for (const AssignmentAst& asg : a.assignments) {
      collect_vars(asg.value, reads);
      if (asg.var_index < writes.size()) writes[asg.var_index] = 1;
    }
    ActionRW rw;
    rw.action = a.name;
    rw.process = a.process;
    rw.loc = a.loc;
    rw.reads = used_list(reads);
    rw.writes = used_list(writes);
    if (a.process >= 0) {
      for (std::size_t v : rw.reads) readers[v].insert(a.process);
      for (std::size_t v : rw.writes) writers[v].insert(a.process);
    }
    report.actions.push_back(std::move(rw));
  }
  for (std::size_t v = 0; v < ast.vars.size(); ++v) {
    VarInterference vi;
    vi.var_index = v;
    vi.writer_processes.assign(writers[v].begin(), writers[v].end());
    vi.reader_processes.assign(readers[v].begin(), readers[v].end());
    report.vars.push_back(std::move(vi));
  }
  return report;
}

std::string format_read_write_report(const SystemAst& ast) {
  ReadWriteReport report = read_write_report(ast);
  std::ostringstream out;
  auto names = [&](const std::vector<std::size_t>& vars) {
    std::ostringstream ss;
    for (std::size_t i = 0; i < vars.size(); ++i)
      ss << (i ? ", " : "") << ast.vars[vars[i]].name;
    return ss.str();
  };
  auto procs = [](const std::vector<int>& ps) {
    std::ostringstream ss;
    for (std::size_t i = 0; i < ps.size(); ++i) ss << (i ? ", " : "") << ps[i];
    return ss.str();
  };
  out << "read/write sets (" << report.actions.size() << " action(s), "
      << report.vars.size() << " variable(s)):\n";
  for (const ActionRW& rw : report.actions) {
    out << "  action " << rw.action;
    if (rw.process >= 0) out << " @" << rw.process;
    out << ": reads {" << names(rw.reads) << "} writes {" << names(rw.writes) << "}\n";
  }
  bool interference = false;
  for (const VarInterference& vi : report.vars) {
    out << "  var " << ast.vars[vi.var_index].name << ": writer processes {"
        << procs(vi.writer_processes) << "} reader processes {"
        << procs(vi.reader_processes) << "}\n";
    interference |= vi.writer_processes.size() >= 2;
  }
  out << (interference
              ? "  cross-process write interference: YES (see var-multi-writer)\n"
              : "  cross-process write interference: none\n");
  return out.str();
}

std::string render_read_write_report_json(const SystemAst& ast) {
  ReadWriteReport report = read_write_report(ast);
  std::ostringstream out;
  auto names = [&](const std::vector<std::size_t>& vars) {
    std::ostringstream ss;
    for (std::size_t i = 0; i < vars.size(); ++i)
      ss << (i ? ", " : "") << '"' << json_escape(ast.vars[vars[i]].name) << '"';
    return ss.str();
  };
  auto procs = [](const std::vector<int>& ps) {
    std::ostringstream ss;
    for (std::size_t i = 0; i < ps.size(); ++i) ss << (i ? ", " : "") << ps[i];
    return ss.str();
  };
  out << "\"sets\": {\"actions\": [";
  for (std::size_t i = 0; i < report.actions.size(); ++i) {
    const ActionRW& rw = report.actions[i];
    if (i) out << ", ";
    out << "{\"action\": \"" << json_escape(rw.action)
        << "\", \"process\": " << rw.process << ", \"line\": " << rw.loc.line
        << ", \"column\": " << rw.loc.column << ", \"reads\": [" << names(rw.reads)
        << "], \"writes\": [" << names(rw.writes) << "]}";
  }
  out << "], \"vars\": [";
  bool interference = false;
  for (std::size_t i = 0; i < report.vars.size(); ++i) {
    const VarInterference& vi = report.vars[i];
    if (i) out << ", ";
    out << "{\"var\": \"" << json_escape(ast.vars[vi.var_index].name)
        << "\", \"writer_processes\": [" << procs(vi.writer_processes)
        << "], \"reader_processes\": [" << procs(vi.reader_processes) << "]}";
    interference |= vi.writer_processes.size() >= 2;
  }
  out << "], \"cross_process_write_interference\": " << (interference ? "true" : "false")
      << "}";
  return out.str();
}

}  // namespace cref::gcl
