#include "gcl/parser.hpp"

#include <map>
#include <stdexcept>

#include "gcl/lexer.hpp"

namespace cref::gcl {

namespace {

SourceLoc loc_of(const Token& t) { return {t.line, t.column}; }

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SystemAst parse_file() {
    expect_keyword("system");
    ast_.name = expect(Tok::Ident).text;
    expect(Tok::LBrace);
    while (!at(Tok::RBrace)) parse_decl();
    expect(Tok::RBrace);
    expect(Tok::End);
    return std::move(ast_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) { fail_at(cur(), what); }

  [[noreturn]] void fail_at(const Token& t, const std::string& what) {
    throw std::runtime_error("gcl: line " + std::to_string(t.line) + ":" +
                             std::to_string(t.column) + ": " + what);
  }

  const Token& cur() const { return tokens_[pos_]; }
  bool at(Tok kind) const { return cur().kind == kind; }
  bool at_keyword(const char* kw) const { return at(Tok::Ident) && cur().text == kw; }
  Token advance() { return tokens_[pos_++]; }

  Token expect(Tok kind) {
    if (!at(kind))
      fail(std::string("expected ") + tok_name(kind) + ", found " + tok_name(cur().kind) +
           (cur().kind == Tok::Ident ? " '" + cur().text + "'" : ""));
    return advance();
  }

  void expect_keyword(const char* kw) {
    if (!at_keyword(kw)) fail(std::string("expected '") + kw + "'");
    advance();
  }

  void parse_decl() {
    if (at_keyword("var")) {
      parse_var();
    } else if (at_keyword("action")) {
      parse_action();
    } else if (at_keyword("init")) {
      Token kw = advance();
      expect(Tok::Colon);
      if (ast_.init) fail_at(kw, "duplicate init declaration");
      ast_.init = std::make_unique<Expr>(parse_expr());
      ast_.init_loc = loc_of(kw);
      expect(Tok::Semi);
    } else {
      fail("expected 'var', 'action' or 'init'");
    }
  }

  // Domain bound: NUMBER with an optional leading '-', so that
  // `var x : 0..-1;` is rejected by domain validation (clear message)
  // rather than by the grammar.
  std::int64_t parse_bound() {
    bool negative = false;
    if (at(Tok::Minus)) {
      advance();
      negative = true;
    }
    std::int64_t v = expect(Tok::Number).number;
    return negative ? -v : v;
  }

  void parse_var() {
    advance();  // var
    Token name = expect(Tok::Ident);
    if (var_index_.count(name.text)) fail_at(name, "duplicate variable '" + name.text + "'");
    expect(Tok::Colon);
    int cardinality;
    if (at_keyword("bool")) {
      advance();
      cardinality = 2;
    } else {
      Token lo_tok = cur();
      std::int64_t lo = parse_bound();
      if (lo != 0)
        fail_at(lo_tok, "variable domains must start at 0 (got " + std::to_string(lo) +
                            ".. for '" + name.text + "')");
      expect(Tok::DotDot);
      Token hi_tok = cur();
      std::int64_t hi = parse_bound();
      if (hi < 0)
        fail_at(hi_tok, "empty domain 0.." + std::to_string(hi) + " for '" + name.text +
                            "' (cardinality " + std::to_string(hi + 1) +
                            "); the upper bound must be >= 0");
      if (hi > 254)
        fail_at(hi_tok, "domain upper bound out of range (0..254), got " +
                            std::to_string(hi));
      cardinality = static_cast<int>(hi) + 1;
    }
    expect(Tok::Semi);
    var_index_[name.text] = ast_.vars.size();
    ast_.vars.push_back({name.text, cardinality, loc_of(name)});
  }

  void parse_action() {
    advance();  // action
    ActionAst action;
    Token name = expect(Tok::Ident);
    action.name = name.text;
    action.loc = loc_of(name);
    if (at(Tok::At)) {
      advance();
      action.process = static_cast<int>(expect(Tok::Number).number);
    }
    expect(Tok::Colon);
    action.guard = parse_expr();
    expect(Tok::Arrow);
    while (true) {
      AssignmentAst assign;
      Token var = expect(Tok::Ident);
      assign.var = var.text;
      assign.var_index = resolve(var);
      assign.loc = loc_of(var);
      expect(Tok::Assign);
      assign.value = parse_expr();
      action.assignments.push_back(std::move(assign));
      if (!at(Tok::Comma)) break;
      advance();
    }
    expect(Tok::Semi);
    ast_.actions.push_back(std::move(action));
  }

  std::size_t resolve(const Token& name) {
    auto it = var_index_.find(name.text);
    if (it == var_index_.end()) fail_at(name, "unknown variable '" + name.text + "'");
    return it->second;
  }

  // --- expression grammar, lowest precedence first -------------------
  Expr parse_expr() { return parse_or(); }

  Expr binary(Op op, SourceLoc loc, Expr lhs, Expr rhs) {
    Expr e;
    e.op = op;
    e.loc = loc;
    e.children.push_back(std::move(lhs));
    e.children.push_back(std::move(rhs));
    return e;
  }

  Expr parse_or() {
    Expr lhs = parse_and();
    while (at(Tok::OrOr)) {
      SourceLoc loc = loc_of(advance());
      lhs = binary(Op::Or, loc, std::move(lhs), parse_and());
    }
    return lhs;
  }

  Expr parse_and() {
    Expr lhs = parse_cmp();
    while (at(Tok::AndAnd)) {
      SourceLoc loc = loc_of(advance());
      lhs = binary(Op::And, loc, std::move(lhs), parse_cmp());
    }
    return lhs;
  }

  Expr parse_cmp() {
    Expr lhs = parse_add();
    while (true) {
      Op op;
      switch (cur().kind) {
        case Tok::Eq: op = Op::Eq; break;
        case Tok::Ne: op = Op::Ne; break;
        case Tok::Lt: op = Op::Lt; break;
        case Tok::Le: op = Op::Le; break;
        case Tok::Gt: op = Op::Gt; break;
        case Tok::Ge: op = Op::Ge; break;
        default: return lhs;
      }
      SourceLoc loc = loc_of(advance());
      lhs = binary(op, loc, std::move(lhs), parse_add());
    }
  }

  Expr parse_add() {
    Expr lhs = parse_mul();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      Op op = at(Tok::Plus) ? Op::Add : Op::Sub;
      SourceLoc loc = loc_of(advance());
      lhs = binary(op, loc, std::move(lhs), parse_mul());
    }
    return lhs;
  }

  Expr parse_mul() {
    Expr lhs = parse_unary();
    while (at(Tok::Star) || at(Tok::Percent) || at(Tok::Slash)) {
      Op op = at(Tok::Star) ? Op::Mul : at(Tok::Percent) ? Op::Mod : Op::Div;
      SourceLoc loc = loc_of(advance());
      lhs = binary(op, loc, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  Expr parse_unary() {
    if (at(Tok::Bang)) {
      SourceLoc loc = loc_of(advance());
      Expr e;
      e.op = Op::Not;
      e.loc = loc;
      e.children.push_back(parse_unary());
      return e;
    }
    if (at(Tok::Minus)) {
      SourceLoc loc = loc_of(advance());
      Expr e;
      e.op = Op::Neg;
      e.loc = loc;
      e.children.push_back(parse_unary());
      return e;
    }
    return parse_atom();
  }

  Expr parse_atom() {
    if (at(Tok::Number)) {
      Token t = advance();
      Expr e = Expr::constant(t.number);
      e.loc = loc_of(t);
      return e;
    }
    if (at(Tok::LParen)) {
      advance();
      Expr e = parse_expr();
      expect(Tok::RParen);
      return e;
    }
    if (at(Tok::Ident)) {
      if (at_keyword("true")) {
        Token t = advance();
        Expr e = Expr::constant(1);
        e.loc = loc_of(t);
        return e;
      }
      if (at_keyword("false")) {
        Token t = advance();
        Expr e = Expr::constant(0);
        e.loc = loc_of(t);
        return e;
      }
      Token name = advance();
      Expr e;
      e.op = Op::Var;
      e.name = name.text;
      e.var_index = resolve(name);
      e.loc = loc_of(name);
      return e;
    }
    fail(std::string("expected an expression, found ") + tok_name(cur().kind));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  SystemAst ast_;
  std::map<std::string, std::size_t> var_index_;
};

}  // namespace

SystemAst parse(const std::string& source) {
  return Parser(lex(source)).parse_file();
}

}  // namespace cref::gcl
