#pragma once

// SARIF 2.1.0 rendering of analyzer diagnostics — the shared
// `--format=sarif` back end of gcl_lint, gcl_prove and gcl_refine, so
// every static front end of the repo speaks the exchange format CI
// code-scanning UIs ingest. One run object per invocation: the tool
// component carries the stable rule catalog (rule ids are the same
// strings the text and JSON renderers print), each result points at a
// physicalLocation region built from the diagnostic's 1-based
// SourceLoc, and notes map to "note", warnings to "warning", errors to
// "error" kind/level pairs.
//
// The renderer is deliberately independent of the exit-code policy:
// callers decide pass/fail with should_fail() exactly as for the other
// formats (the gcl_lint --werror regression pins this).

#include <string>
#include <vector>

#include "gcl/diag.hpp"

namespace cref::gcl {

/// One complete SARIF 2.1.0 document (a single run), newline
/// terminated. `tool_name` names the driver (e.g. "gcl_lint");
/// `file` is the analyzed artifact's URI (path or "<input>").
std::string render_sarif(const std::vector<Diagnostic>& diags,
                         const std::string& tool_name, const std::string& file);

}  // namespace cref::gcl
