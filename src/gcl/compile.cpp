#include "gcl/compile.hpp"

#include <memory>

#include "gcl/parser.hpp"

namespace cref::gcl {

std::int64_t eval_mod(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  std::int64_t r = a % b;
  return r < 0 ? r + (b > 0 ? b : -b) : r;
}

std::int64_t eval_div(std::int64_t a, std::int64_t b) {
  // Euclidean: (a - eval_mod(a, b)) is an exact multiple of b, so the
  // pair satisfies a == eval_div(a,b)*b + eval_mod(a,b) for every b != 0.
  if (b == 0) return 0;
  return (a - eval_mod(a, b)) / b;
}

std::int64_t eval(const Expr& e, const StateVec& s) {
  switch (e.op) {
    case Op::Const: return e.value;
    case Op::Var: return static_cast<std::int64_t>(s[e.var_index]);
    case Op::Not: return eval(e.children[0], s) == 0 ? 1 : 0;
    case Op::Neg: return -eval(e.children[0], s);
    case Op::Add: return eval(e.children[0], s) + eval(e.children[1], s);
    case Op::Sub: return eval(e.children[0], s) - eval(e.children[1], s);
    case Op::Mul: return eval(e.children[0], s) * eval(e.children[1], s);
    case Op::Mod:
      return eval_mod(eval(e.children[0], s), eval(e.children[1], s));
    case Op::Div:
      return eval_div(eval(e.children[0], s), eval(e.children[1], s));
    case Op::Eq: return eval(e.children[0], s) == eval(e.children[1], s);
    case Op::Ne: return eval(e.children[0], s) != eval(e.children[1], s);
    case Op::Lt: return eval(e.children[0], s) < eval(e.children[1], s);
    case Op::Le: return eval(e.children[0], s) <= eval(e.children[1], s);
    case Op::Gt: return eval(e.children[0], s) > eval(e.children[1], s);
    case Op::Ge: return eval(e.children[0], s) >= eval(e.children[1], s);
    case Op::And:
      return eval(e.children[0], s) != 0 && eval(e.children[1], s) != 0;
    case Op::Or:
      return eval(e.children[0], s) != 0 || eval(e.children[1], s) != 0;
  }
  return 0;
}

System compile(const SystemAst& ast) {
  std::vector<VarSpec> vars;
  std::vector<int> cards;
  for (const VarDeclAst& v : ast.vars) {
    vars.push_back({v.name, static_cast<Value>(v.cardinality)});
    cards.push_back(v.cardinality);
  }
  auto space = std::make_shared<Space>(std::move(vars));

  std::vector<Action> actions;
  for (const ActionAst& a : ast.actions) {
    Action action;
    action.name = a.name;
    action.process = a.process;
    // Share the AST between guard and effect closures.
    auto guard_ast = std::make_shared<Expr>(a.guard);
    auto assigns = std::make_shared<std::vector<AssignmentAst>>(a.assignments);
    auto cards_ptr = std::make_shared<std::vector<int>>(cards);
    action.guard = [guard_ast](const StateVec& s) { return eval(*guard_ast, s) != 0; };
    action.effect = [assigns, cards_ptr](StateVec& s) {
      // Guarded-command multiple assignment: all right-hand sides are
      // evaluated against the old state first.
      std::vector<std::int64_t> values;
      values.reserve(assigns->size());
      for (const AssignmentAst& asg : *assigns) values.push_back(eval(asg.value, s));
      for (std::size_t i = 0; i < assigns->size(); ++i) {
        std::int64_t card = (*cards_ptr)[(*assigns)[i].var_index];
        std::int64_t v = values[i] % card;
        if (v < 0) v += card;
        s[(*assigns)[i].var_index] = static_cast<Value>(v);
      }
    };
    actions.push_back(std::move(action));
  }

  std::optional<StatePredicate> init;
  if (ast.init) {
    auto init_ast = std::make_shared<Expr>(*ast.init);
    init = [init_ast](const StateVec& s) { return eval(*init_ast, s) != 0; };
  }
  return System(ast.name, std::move(space), std::move(actions), std::move(init));
}

System load_system(const std::string& source) { return compile(parse(source)); }

}  // namespace cref::gcl
