#pragma once

// Syntactic abstraction maps (the alpha of [C curlypreceq A]) as a GCL
// AST form: each abstract variable is defined by an expression over the
// CONCRETE program's variables, plus an optional invariant restricting
// where the map is meant to be applied (the static refinement prover
// must re-establish the invariant inductively before relying on it).
//
//   alpha privilege_image {
//     t0 := c0 == c3;
//     t1 := c1 != c0;
//     invariant : (c0 == c3) + (c1 != c0) == 1;
//   }
//
// Every abstract variable must be defined exactly once; the value is
// reduced into the abstract domain with the same Euclidean eval_mod the
// compiler applies to assignments, so alpha_image is total on Sigma_C.

#include <memory>
#include <string>
#include <vector>

#include "core/space.hpp"
#include "gcl/ast.hpp"

namespace cref::gcl {

/// `avar := expr;` — one abstract-variable definition. `value` is
/// resolved over the concrete program's variables.
struct AlphaAssign {
  std::string var;
  std::size_t a_index = 0;  // index into the abstract program's vars
  Expr value;
  SourceLoc loc;  // the abstract variable token
};

/// A whole `alpha NAME { ... }` declaration.
struct AlphaSpec {
  std::string name;
  std::vector<AlphaAssign> defs;  // exactly one per abstract variable
  std::unique_ptr<Expr> invariant;  // over concrete vars; null if absent
  SourceLoc invariant_loc;

  AlphaSpec() = default;
  AlphaSpec(AlphaSpec&&) = default;
  AlphaSpec& operator=(AlphaSpec&&) = default;
  AlphaSpec(const AlphaSpec& o) { *this = o; }
  AlphaSpec& operator=(const AlphaSpec& o) {
    name = o.name;
    defs = o.defs;
    invariant = o.invariant ? std::make_unique<Expr>(*o.invariant) : nullptr;
    invariant_loc = o.invariant_loc;
    return *this;
  }
};

/// Parses an alpha spec, resolving right-hand sides over `c_ast`'s
/// variables and left-hand sides over `a_ast`'s. Requires every
/// abstract variable to be defined exactly once and at most one
/// invariant clause. Throws std::runtime_error with an
/// "alpha: line L:C: ..." message on any violation.
AlphaSpec parse_alpha(const std::string& source, const SystemAst& c_ast,
                      const SystemAst& a_ast);

/// The by-name identity map: every abstract variable must exist in
/// `c_ast` under the same name with cardinality >= the abstract one is
/// NOT required — the image is reduced mod the abstract cardinality —
/// but the name must resolve. Throws std::runtime_error when it
/// cannot.
AlphaSpec identity_alpha(const SystemAst& c_ast, const SystemAst& a_ast);

/// Re-parseable rendering of the spec (concrete variable names from the
/// expressions' display names).
std::string print_alpha(const AlphaSpec& spec);

/// Image of concrete state `s` under the map: per definition,
/// eval(value, s) reduced with eval_mod into the abstract domain.
/// `out` is resized to the abstract variable count.
void alpha_image(const AlphaSpec& spec, const SystemAst& a_ast, const StateVec& s,
                 StateVec& out);

/// Parses one expression over `ast`'s variables (refinement
/// certificates store their expressions as re-parseable GCL text).
/// Throws std::runtime_error on any syntax or resolution error.
Expr parse_expr_over(const std::string& text, const SystemAst& ast);

}  // namespace cref::gcl
