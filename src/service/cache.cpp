#include "service/cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace cref::service {

namespace {

void write_vec(std::ostringstream& out, const char* label, const std::vector<std::uint64_t>& v) {
  out << label << ' ' << v.size();
  for (std::uint64_t x : v) out << ' ' << x;
  out << '\n';
}

void write_ids(std::ostringstream& out, const char* label, const std::vector<StateId>& v) {
  out << label << ' ' << v.size();
  for (StateId x : v) out << ' ' << x;
  out << '\n';
}

void write_vec32(std::ostringstream& out, const char* label,
                 const std::vector<std::uint32_t>& v) {
  out << label << ' ' << v.size();
  for (std::uint32_t x : v) out << ' ' << x;
  out << '\n';
}

void write_bits(std::ostringstream& out, const char* label, const std::vector<char>& v) {
  out << label << ' ' << v.size();
  if (!v.empty()) {
    out << ' ';
    for (char c : v) out << (c ? '1' : '0');
  }
  out << '\n';
}

class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  std::optional<std::string> next() {
    std::string line;
    if (!std::getline(in_, line)) return std::nullopt;
    return line;
  }

 private:
  std::istringstream in_;
};

bool no_trailing(std::istringstream& ss) {
  std::string rest;
  return !(ss >> rest);
}

bool open_labeled(const std::optional<std::string>& line, const char* label,
                  std::istringstream& ss) {
  if (!line) return false;
  ss.str(*line);
  std::string tok;
  return static_cast<bool>(ss >> tok) && tok == label;
}

template <class T>
bool read_numbers(LineReader& r, const char* label, std::vector<T>& out) {
  std::istringstream ss;
  if (!open_labeled(r.next(), label, ss)) return false;
  std::uint64_t n = 0;
  if (!(ss >> n)) return false;
  out.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    if (!(ss >> v)) return false;
    out.push_back(static_cast<T>(v));
  }
  return no_trailing(ss);
}

bool read_bits(LineReader& r, const char* label, std::vector<char>& out) {
  std::istringstream ss;
  if (!open_labeled(r.next(), label, ss)) return false;
  std::uint64_t n = 0;
  if (!(ss >> n)) return false;
  out.clear();
  if (n == 0) return no_trailing(ss);
  std::string bits;
  if (!(ss >> bits) || bits.size() != n) return false;
  for (char c : bits) {
    if (c != '0' && c != '1') return false;
    out.push_back(c == '1');
  }
  return no_trailing(ss);
}

bool read_flag(LineReader& r, const char* label, bool& out) {
  std::istringstream ss;
  if (!open_labeled(r.next(), label, ss)) return false;
  int v = 0;
  if (!(ss >> v) || (v != 0 && v != 1)) return false;
  out = v == 1;
  return no_trailing(ss);
}

bool read_word(LineReader& r, const char* label, std::string& out) {
  std::istringstream ss;
  if (!open_labeled(r.next(), label, ss)) return false;
  return static_cast<bool>(ss >> out) && no_trailing(ss);
}

}  // namespace

std::string serialize_entry(const CacheEntry& entry) {
  std::ostringstream out;
  out << "cref-cache 2\n";
  out << "relation " << to_string(entry.relation) << '\n';
  out << "holds " << (entry.holds ? 1 : 0) << '\n';
  // Raw to end of line; reasons never contain '\n' (and if one ever
  // did, the strict parser would turn the entry into a miss, not a
  // corrupted answer).
  out << "reason " << entry.reason << '\n';
  write_ids(out, "witness", entry.witness);
  out << "cert " << (entry.certificate ? 1 : 0) << '\n';
  if (entry.certificate) {
    const JobCertificate& c = *entry.certificate;
    out << "positive " << (c.positive ? 1 : 0) << '\n';
    write_vec(out, "rho", c.rho);
    write_vec(out, "sigma", c.sigma);
    write_bits(out, "region", c.c_region);
    out << "compressed " << c.compressed.size() << '\n';
    for (const JobCertificate::APath& p : c.compressed) {
      out << "cpath " << p.s << ' ' << p.t << ' ' << p.path.size();
      for (StateId x : p.path) out << ' ' << x;
      out << '\n';
    }
    write_bits(out, "stab-reach", c.stab.a_reachable);
    write_ids(out, "stab-parent", c.stab.a_parent);
    write_vec32(out, "stab-depth", c.stab.a_depth);
    write_vec(out, "stab-rho", c.stab.rho);
    write_vec(out, "stab-sigma", c.stab.sigma);
    out << "kind " << to_string(c.kind) << '\n';
    write_ids(out, "init-path", c.init_path);
    write_bits(out, "a-closed", c.a_closed);
    // The static refinement certificate is itself a line-oriented text
    // blob; embed it verbatim, length-prefixed by line count.
    std::size_t nlines = 0;
    for (char ch : c.refine)
      if (ch == '\n') ++nlines;
    out << "refine " << nlines << '\n' << c.refine;
  }
  out << "end\n";
  return out.str();
}

std::optional<CacheEntry> parse_entry(const std::string& text) {
  LineReader r(text);
  if (auto line = r.next(); !line || *line != "cref-cache 2") return std::nullopt;

  CacheEntry e;
  std::string word;
  if (!read_word(r, "relation", word)) return std::nullopt;
  try {
    e.relation = relation_from_string(word);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!read_flag(r, "holds", e.holds)) return std::nullopt;

  auto reason_line = r.next();
  if (!reason_line) return std::nullopt;
  if (*reason_line == "reason") {
    e.reason.clear();
  } else if (reason_line->rfind("reason ", 0) == 0) {
    e.reason = reason_line->substr(7);
  } else {
    return std::nullopt;
  }

  if (!read_numbers(r, "witness", e.witness)) return std::nullopt;
  bool has_cert = false;
  if (!read_flag(r, "cert", has_cert)) return std::nullopt;
  if (has_cert) {
    JobCertificate c;
    if (!read_flag(r, "positive", c.positive)) return std::nullopt;
    if (!read_numbers(r, "rho", c.rho)) return std::nullopt;
    if (!read_numbers(r, "sigma", c.sigma)) return std::nullopt;
    if (!read_bits(r, "region", c.c_region)) return std::nullopt;
    std::istringstream ss;
    if (!open_labeled(r.next(), "compressed", ss)) return std::nullopt;
    std::uint64_t count = 0;
    if (!(ss >> count) || !no_trailing(ss)) return std::nullopt;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::istringstream ps;
      if (!open_labeled(r.next(), "cpath", ps)) return std::nullopt;
      JobCertificate::APath p;
      std::uint64_t len = 0;
      if (!(ps >> p.s >> p.t >> len)) return std::nullopt;
      for (std::uint64_t j = 0; j < len; ++j) {
        StateId x = 0;
        if (!(ps >> x)) return std::nullopt;
        p.path.push_back(x);
      }
      if (!no_trailing(ps)) return std::nullopt;
      c.compressed.push_back(std::move(p));
    }
    if (!read_bits(r, "stab-reach", c.stab.a_reachable)) return std::nullopt;
    if (!read_numbers(r, "stab-parent", c.stab.a_parent)) return std::nullopt;
    if (!read_numbers(r, "stab-depth", c.stab.a_depth)) return std::nullopt;
    if (!read_numbers(r, "stab-rho", c.stab.rho)) return std::nullopt;
    if (!read_numbers(r, "stab-sigma", c.stab.sigma)) return std::nullopt;
    if (!read_word(r, "kind", word)) return std::nullopt;
    try {
      c.kind = violation_kind_from_string(word);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (!read_numbers(r, "init-path", c.init_path)) return std::nullopt;
    if (!read_bits(r, "a-closed", c.a_closed)) return std::nullopt;
    std::istringstream rs;
    if (!open_labeled(r.next(), "refine", rs)) return std::nullopt;
    std::uint64_t nlines = 0;
    if (!(rs >> nlines) || !no_trailing(rs)) return std::nullopt;
    for (std::uint64_t i = 0; i < nlines; ++i) {
      auto line = r.next();
      if (!line) return std::nullopt;
      c.refine += *line;
      c.refine += '\n';
    }
    e.certificate = std::move(c);
  }
  if (auto line = r.next(); !line || *line != "end") return std::nullopt;
  if (r.next()) return std::nullopt;  // trailing garbage
  return e;
}

VerdictCache::VerdictCache(std::size_t capacity, std::string dir)
    : capacity_(capacity ? capacity : 1), dir_(std::move(dir)) {}

std::optional<CacheEntry> VerdictCache::lookup(const Digest& key) {
  const std::string hex = key.hex();
  if (auto it = map_.find(hex); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return it->second->entry;
  }
  if (dir_.empty()) return std::nullopt;
  auto from_disk = disk_lookup(hex);
  if (!from_disk) return std::nullopt;
  store(key, *from_disk);  // promote into memory (re-writing the file is harmless)
  return from_disk;
}

void VerdictCache::store(const Digest& key, const CacheEntry& entry) {
  const std::string hex = key.hex();
  if (auto it = map_.find(hex); it != map_.end()) {
    it->second->entry = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Node{hex, entry});
    map_[hex] = lru_.begin();
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().key_hex);
      lru_.pop_back();
    }
  }
  if (!dir_.empty()) disk_store(hex, entry);
}

std::optional<CacheEntry> VerdictCache::disk_lookup(const std::string& key_hex) const {
  std::ifstream in(std::filesystem::path(dir_) / (key_hex + ".entry"), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_entry(text.str());
}

void VerdictCache::disk_store(const std::string& key_hex, const CacheEntry& entry) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;  // disk store is best-effort; memory tier still answers
  std::ofstream out(std::filesystem::path(dir_) / (key_hex + ".entry"), std::ios::binary);
  if (!out) return;
  out << serialize_entry(entry);
}

}  // namespace cref::service
