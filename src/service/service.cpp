#include "service/service.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "gcl/alpha.hpp"
#include "gcl/compile.hpp"
#include "gcl/parser.hpp"
#include "prover/refine.hpp"
#include "refinement/checker.hpp"

namespace cref::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

Job Job::from_graphs(Relation r, TransitionGraph c, std::vector<StateId> c_init,
                     TransitionGraph a, std::vector<StateId> a_init,
                     std::vector<StateId> alpha) {
  const auto t0 = Clock::now();
  Job j;
  j.relation = r;
  j.c = std::move(c);
  j.a = std::move(a);
  j.c_init = std::move(c_init);
  j.a_init = std::move(a_init);
  j.alpha = std::move(alpha);
  j.c_digest = hash_side(j.c, j.c_init);
  j.a_digest = hash_side(j.a, j.a_init);
  j.key = job_key(j.c_digest, j.a_digest, hash_alpha(j.alpha), r);
  j.hash_ms = ms_since(t0);
  return j;
}

Job Job::from_gcl(Relation r, const std::string& c_source, const std::string& a_source) {
  const auto t0 = Clock::now();
  Job j;
  j.relation = r;
  j.is_gcl = true;
  j.c_ast = std::make_shared<const gcl::SystemAst>(gcl::parse(c_source));
  j.a_ast = std::make_shared<const gcl::SystemAst>(gcl::parse(a_source));
  j.c_digest = hash_gcl(*j.c_ast);
  j.a_digest = hash_gcl(*j.a_ast);
  j.key = job_key(j.c_digest, j.a_digest, hash_alpha({}), r);
  j.hash_ms = ms_since(t0);
  return j;
}

CheckService::CheckService(ServiceOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache_capacity, opts_.cache_dir) {}

std::shared_ptr<const CheckService::BuiltSide> CheckService::side_for(
    const Digest& digest, const std::shared_ptr<const gcl::SystemAst>& ast, double& build_ms) {
  const std::string hex = digest.hex();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto it = sides_.find(hex); it != sides_.end()) return it->second;
  }
  const auto t0 = Clock::now();
  System sys = gcl::compile(*ast);
  auto side = std::make_shared<BuiltSide>();
  side->graph = TransitionGraph::build(sys, opts_.engine, opts_.max_states);
  side->init = sys.initial_states();
  build_ms += ms_since(t0);
  std::lock_guard<std::mutex> lk(mu_);
  return sides_.emplace(hex, std::move(side)).first->second;  // first stored copy wins
}

JobOutcome CheckService::run(const Job& job) { return run_with(job, opts_.engine); }

std::vector<JobOutcome> CheckService::run_batch(const std::vector<Job>& jobs) {
  std::vector<JobOutcome> out(jobs.size());
  // One job per grab across the pool; each job's inner check runs
  // single-threaded so a batch of B jobs uses ~B-way, not B*T-way,
  // parallelism.
  EngineOptions sched = opts_.engine;
  sched.chunk_size = 1;
  EngineOptions inner = opts_.engine;
  inner.num_threads = 1;
  parallel_chunks(jobs.size(), sched, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        out[i] = run_with(jobs[i], inner);
      } catch (const std::exception& e) {
        out[i].key = jobs[i].key;
        out[i].result = CheckResult::fail(std::string("service: ") + e.what());
      }
    }
  });
  return out;
}

CheckService::Stats CheckService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

JobOutcome CheckService::run_with(const Job& job, const EngineOptions& engine) {
  JobOutcome out;
  out.key = job.key;
  out.hash_ms = job.hash_ms;

  std::optional<CacheEntry> cached;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cached = cache_.lookup(job.key);
  }

  // Static refinement path for GCL convergence jobs: prove — and, on
  // warm hits, revalidate — [C <~ A] from the ASTs alone, so neither
  // state space is ever materialized (build_ms stays 0).
  if (job.is_gcl && job.relation == Relation::kConvergence && opts_.static_refine) {
    if (cached && cached->relation == job.relation && cached->holds &&
        cached->certificate && !cached->certificate->refine.empty()) {
      const auto t0 = Clock::now();
      bool ok = false;
      try {
        std::optional<prover::RefinementCertificate> cert =
            prover::parse_refinement_certificate(cached->certificate->refine,
                                                 *job.c_ast);
        if (cert) {
          gcl::AlphaSpec alpha = gcl::identity_alpha(*job.c_ast, *job.a_ast);
          ok = prover::validate_refinement_certificate(*job.c_ast, *job.a_ast, alpha,
                                                       *cert, nullptr);
        }
      } catch (const std::exception&) {
        ok = false;  // malformed blob = validation failure = recompute
      }
      out.validate_ms = ms_since(t0);
      if (ok) {
        out.result = CheckResult{cached->holds, cached->reason, Trace{cached->witness}};
        out.cache_hit = true;
        out.revalidated = true;
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.hits;
        return out;
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.validation_failures;
      }
      cached.reset();  // fall through; the fresh result overwrites the entry
    }
    if (!cached) {
      const auto t0 = Clock::now();
      try {
        gcl::AlphaSpec alpha = gcl::identity_alpha(*job.c_ast, *job.a_ast);
        prover::RefineResult sr =
            prover::prove_refinement(*job.c_ast, *job.a_ast, alpha);
        if (sr.verdict == prover::RefineVerdict::Proved &&
            prover::validate_refinement_certificate(*job.c_ast, *job.a_ast, alpha,
                                                    *sr.certificate, nullptr)) {
          out.check_ms = ms_since(t0);
          CacheEntry fresh;
          fresh.relation = job.relation;
          fresh.holds = true;
          fresh.reason = "statically certified: [" + job.c_ast->name + " <~ " +
                         job.a_ast->name + "]";
          fresh.certificate = JobCertificate{};
          fresh.certificate->refine =
              prover::serialize_refinement_certificate(*sr.certificate);
          out.certificate_stored = true;
          out.result = CheckResult{fresh.holds, fresh.reason, Trace{}};
          std::lock_guard<std::mutex> lk(mu_);
          ++stats_.misses;
          cache_.store(job.key, fresh);
          ++stats_.stores;
          return out;
        }
      } catch (const std::exception&) {
        // identity map undefined, etc. — the explicit engine decides
      }
      out.check_ms = ms_since(t0);  // unknown/refuted: static time still counts
    }
  }

  static const std::vector<StateId> kIdentity;
  const TransitionGraph* c = &job.c;
  const TransitionGraph* a = &job.a;
  const std::vector<StateId>* c_init = &job.c_init;
  const std::vector<StateId>* a_init = &job.a_init;
  const std::vector<StateId>* alpha = &job.alpha;
  std::shared_ptr<const BuiltSide> cs, as;
  if (job.is_gcl) {
    cs = side_for(job.c_digest, job.c_ast, out.build_ms);
    as = side_for(job.a_digest, job.a_ast, out.build_ms);
    c = &cs->graph;
    a = &as->graph;
    c_init = &cs->init;
    a_init = &as->init;
    alpha = &kIdentity;
    if (c->num_states() != a->num_states())
      throw std::invalid_argument(
          "service: GCL job sides have different state-space sizes (identity alpha)");
  }

  const std::optional<CacheEntry>& entry = cached;
  if (entry && entry->relation == job.relation && entry->certificate) {
    const auto t0 = Clock::now();
    CheckResult verdict =
        validate_job_certificate(job.relation, entry->holds, Trace{entry->witness},
                                 *entry->certificate, *c, *a, *c_init, *a_init, *alpha);
    out.validate_ms = ms_since(t0);
    if (verdict.holds) {
      // Serve the stored bytes unchanged: warm == cold, byte for byte.
      out.result = CheckResult{entry->holds, entry->reason, Trace{entry->witness}};
      out.cache_hit = true;
      out.revalidated = true;
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.hits;
      return out;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.validation_failures;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
  }
  const auto t0 = Clock::now();
  RefinementChecker rc(*c, *a, *c_init, *a_init, *alpha);
  rc.set_engine_options(engine);
  CheckResult res = run_relation(rc, job.relation);
  out.check_ms += ms_since(t0);  // += keeps a failed static attempt's time

  CacheEntry fresh;
  fresh.relation = job.relation;
  fresh.holds = res.holds;
  fresh.reason = res.reason;
  fresh.witness = res.witness.states;
  if (c->num_states() <= opts_.max_cert_states) {
    CertifyOptions co;
    co.max_compressed_witnesses = opts_.max_compressed_witnesses;
    fresh.certificate = make_job_certificate(rc, job.relation, res, co);
    out.certificate_stored = fresh.certificate.has_value();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    cache_.store(job.key, fresh);
    ++stats_.stores;
  }
  out.result = std::move(res);
  return out;
}

}  // namespace cref::service
