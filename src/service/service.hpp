#pragma once

// Batch-concurrent checking service: canonical job keys, a trust-free
// verdict cache, and a shared graph store.
//
// A Job names a (C, A, alpha, relation) instance either as explicit
// graphs or as a pair of GCL programs; its 128-bit key is the canonical
// structural hash (service/hash.hpp), so renamed actions, reordered
// declarations, or a re-submitted identical batch all hit the same
// entry. Serving a hit NEVER trusts the cache: the entry's certificate
// is revalidated against graphs rebuilt locally from the request
// (service/certify.hpp), and any failure — tampering, corruption, hash
// collision — falls back to a full check whose result overwrites the
// entry. A validated hit returns the stored reason/witness bytes
// unchanged, so cold and warm answers are byte-identical.
//
// run_batch executes independent jobs across the engine's thread pool
// (one job per grab); per-job phase timings expose where the time went.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.hpp"
#include "gcl/ast.hpp"
#include "refinement/check_result.hpp"
#include "service/cache.hpp"
#include "service/certify.hpp"
#include "service/hash.hpp"
#include "service/relation.hpp"
#include "util/parallel.hpp"

namespace cref::service {

struct ServiceOptions {
  EngineOptions engine;

  /// In-memory LRU capacity (entries).
  std::size_t cache_capacity = 1024;

  /// Optional on-disk store directory; empty = memory only.
  std::string cache_dir;

  /// Systems larger than this are checked but cached without a
  /// certificate (warm lookups recompute instead of revalidating).
  StateId max_cert_states = 1ull << 22;

  /// Per-certificate cap on stored compressed-edge A-paths.
  std::size_t max_compressed_witnesses = 4096;

  /// State-space cap for building GCL jobs' graphs.
  StateId max_states = 1ull << 26;

  /// Try the static refinement prover (src/prover/refine.hpp) first for
  /// GCL convergence jobs: a proof from the ASTs alone serves the job —
  /// and revalidates its warm hits — without ever building a graph
  /// (build_ms stays 0). Unknown/refuted falls back to the explicit
  /// engine; disable to force graph checking.
  bool static_refine = true;
};

/// One checking request. Construct via from_graphs or from_gcl (which
/// computes the canonical key up front; `hash_ms` records that cost).
struct Job {
  Relation relation = Relation::kRefinementInit;
  Digest key;
  Digest c_digest, a_digest;  // per-side keys into the shared graph store
  double hash_ms = 0;

  // Graph payload (is_gcl == false).
  TransitionGraph c, a;
  std::vector<StateId> c_init, a_init;
  std::vector<StateId> alpha;  // empty = identity

  // GCL payload (is_gcl == true); alpha is identity.
  bool is_gcl = false;
  std::shared_ptr<const gcl::SystemAst> c_ast, a_ast;

  static Job from_graphs(Relation r, TransitionGraph c, std::vector<StateId> c_init,
                         TransitionGraph a, std::vector<StateId> a_init,
                         std::vector<StateId> alpha = {});

  /// Parses both programs (throws std::runtime_error on syntax errors)
  /// and keys the job by their canonical AST hashes — graphs are built
  /// lazily by the service, once per distinct side.
  static Job from_gcl(Relation r, const std::string& c_source, const std::string& a_source);
};

struct JobOutcome {
  CheckResult result;
  Digest key;
  bool cache_hit = false;           // served from a validated cache entry
  bool revalidated = false;         // certificate validation ran and passed
  bool certificate_stored = false;  // this run produced and stored a certificate

  // Phase wall-clock (milliseconds).
  double hash_ms = 0;      // canonical hashing (paid at Job construction)
  double build_ms = 0;     // compile + graph materialization (GCL jobs)
  double check_ms = 0;     // full check, when one ran
  double validate_ms = 0;  // certificate validation, when one ran
};

class CheckService {
 public:
  struct Stats {
    std::size_t hits = 0;                 // served from cache after validation
    std::size_t misses = 0;               // no usable entry: full check ran
    std::size_t validation_failures = 0;  // entry present but its certificate failed
    std::size_t stores = 0;               // entries written (including overwrites)
  };

  explicit CheckService(ServiceOptions opts = {});

  /// Runs one job at full engine parallelism.
  JobOutcome run(const Job& job);

  /// Runs independent jobs across the engine thread pool (each job's
  /// inner check single-threaded to avoid oversubscription). Results
  /// are positional; identical jobs in one batch may each miss (the
  /// cache is consulted per job, not deduplicated across in-flight
  /// work).
  std::vector<JobOutcome> run_batch(const std::vector<Job>& jobs);

  const ServiceOptions& options() const { return opts_; }
  Stats stats() const;

 private:
  struct BuiltSide {
    TransitionGraph graph;
    std::vector<StateId> init;
  };

  JobOutcome run_with(const Job& job, const EngineOptions& engine);
  std::shared_ptr<const BuiltSide> side_for(const Digest& digest,
                                            const std::shared_ptr<const gcl::SystemAst>& ast,
                                            double& build_ms);

  ServiceOptions opts_;
  VerdictCache cache_;
  mutable std::mutex mu_;  // guards cache_, sides_, stats_
  std::unordered_map<std::string, std::shared_ptr<const BuiltSide>> sides_;
  Stats stats_;
};

}  // namespace cref::service
