#include "service/hash.hpp"

#include <cstdio>

#include "gcl/ast.hpp"

namespace cref::service {

namespace {

// splitmix64 finalizer — the same mixer the campaign driver uses for
// per-run seeds; statistically strong enough that summing mixed values
// (the commutative combines below) keeps all 128 digest bits live.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Domain-separation tags: every aggregate starts from a distinct
// constant so e.g. a graph and a state set over the same ids cannot
// collide structurally.
enum Tag : std::uint64_t {
  kTagGraph = 0x67726170682d7631ull,
  kTagStateSet = 0x7374617465736574ull,
  kTagAlpha = 0x616c7068612d7631ull,
  kTagIdentity = 0x6964656e74697479ull,
  kTagSide = 0x736964652d2d2d76ull,
  kTagGcl = 0x67636c2d6173742dull,
  kTagExpr = 0x657870722d2d2d2dull,
  kTagAction = 0x616374696f6e2d2dull,
  kTagNoInit = 0x6e6f2d696e69742dull,
  kTagJob = 0x6a6f622d6b65792dull,
};

// Commutative accumulator: wrapping per-lane sums of element digests.
struct Sum {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  void add(const Digest& d) {
    hi += d.hi;
    lo += d.lo;
  }
  Digest digest() const { return {mix64(hi), mix64(lo ^ 0x5bf0363546290f37ull)}; }
};

Digest hash_expr(const gcl::Expr& e) {
  Digest d = combine(hash_u64(kTagExpr), hash_u64(static_cast<std::uint64_t>(e.op)));
  switch (e.op) {
    case gcl::Op::Const:
      d = combine(d, hash_u64(static_cast<std::uint64_t>(e.value)));
      break;
    case gcl::Op::Var:
      d = combine(d, hash_u64(e.var_index));
      break;
    default:
      break;
  }
  for (const gcl::Expr& c : e.children) d = combine(d, hash_expr(c));
  return d;
}

Digest hash_action(const gcl::ActionAst& a) {
  // Name excluded (a pure label: no answer string mentions it); process
  // id included — it selects the action under distributed daemons.
  Digest d = combine(hash_u64(kTagAction),
                     hash_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(a.process))));
  d = combine(d, hash_expr(a.guard));
  for (const gcl::AssignmentAst& asg : a.assignments) {
    d = combine(d, hash_u64(asg.var_index));
    d = combine(d, hash_expr(asg.value));
  }
  return d;
}

}  // namespace

std::string Digest::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Digest hash_u64(std::uint64_t v) {
  return {mix64(v ^ 0x243f6a8885a308d3ull), mix64(v ^ 0x13198a2e03707344ull)};
}

Digest combine(const Digest& a, const Digest& b) {
  return {mix64(a.hi * 0x100000001b3ull ^ b.hi), mix64(a.lo * 0xc6a4a7935bd1e995ull ^ b.lo)};
}

Digest hash_graph(const TransitionGraph& g) {
  const StateId n = g.num_states();
  Sum edges;
  for (StateId s = 0; s < n; ++s)
    for (StateId t : g.successors(s)) edges.add(combine(hash_u64(s), hash_u64(t)));
  Digest d = combine(hash_u64(kTagGraph), hash_u64(n));
  d = combine(d, hash_u64(g.num_edges()));
  return combine(d, edges.digest());
}

Digest hash_state_set(const std::vector<StateId>& states) {
  // Commutative sum: order-independent, as cache identity needs. A
  // duplicated element changes the digest (multiset semantics), which
  // can only cause a false miss — init sets from System::initial_states
  // and the fuzz generators are duplicate-free anyway.
  Sum acc;
  for (StateId s : states) acc.add(hash_u64(s));
  Digest d = combine(hash_u64(kTagStateSet), hash_u64(states.size()));
  return combine(d, acc.digest());
}

Digest hash_alpha(const std::vector<StateId>& alpha) {
  if (alpha.empty()) return hash_u64(kTagIdentity);
  Digest d = combine(hash_u64(kTagAlpha), hash_u64(alpha.size()));
  for (StateId v : alpha) d = combine(d, hash_u64(v));
  return d;
}

Digest hash_side(const TransitionGraph& g, const std::vector<StateId>& init) {
  return combine(combine(hash_u64(kTagSide), hash_graph(g)), hash_state_set(init));
}

Digest hash_gcl(const gcl::SystemAst& ast) {
  Digest d = combine(hash_u64(kTagGcl), hash_u64(ast.vars.size()));
  // Variable order and cardinalities define the state encoding; names
  // do not (answers carry StateIds, never variable names).
  for (const gcl::VarDeclAst& v : ast.vars)
    d = combine(d, hash_u64(static_cast<std::uint64_t>(v.cardinality)));
  // Actions combine commutatively: successor sets are unions over
  // actions, so declaration order cannot change any answer.
  Sum actions;
  for (const gcl::ActionAst& a : ast.actions) actions.add(hash_action(a));
  d = combine(d, hash_u64(ast.actions.size()));
  d = combine(d, actions.digest());
  d = combine(d, ast.init ? hash_expr(*ast.init) : hash_u64(kTagNoInit));
  return d;
}

Digest job_key(const Digest& c_side, const Digest& a_side, const Digest& alpha, Relation r) {
  Digest d = combine(hash_u64(kTagJob), c_side);
  d = combine(d, a_side);
  d = combine(d, alpha);
  return combine(d, hash_u64(static_cast<std::uint64_t>(r)));
}

}  // namespace cref::service
