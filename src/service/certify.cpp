#include "service/certify.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "refinement/checker.hpp"
#include "refinement/reachability.hpp"
#include "refinement/scc.hpp"
#include "util/bitset.hpp"

namespace cref::service {

namespace {

std::vector<char> to_chars(const util::DenseBitset& b) {
  std::vector<char> v(b.size(), 0);
  b.for_each_set([&](std::size_t i) { v[i] = 1; });
  return v;
}

// ---------------------------------------------------------------- generation

/// Longest-path index of the subgraph of stutter edges with
/// non-A-deadlock images (restricted to `filter` members when given).
/// nullopt if that subgraph has a cycle — then the relation's stutter
/// condition is violated and no positive certificate exists.
std::optional<std::vector<std::uint64_t>> stutter_sigma(const RefinementChecker& rc,
                                                        const std::vector<char>* filter) {
  const TransitionGraph& c = rc.c_graph();
  const TransitionGraph& a = rc.a_graph();
  const StateId cn = c.num_states();
  std::vector<std::pair<StateId, StateId>> edges;
  for (StateId s = 0; s < cn; ++s) {
    if (filter && !(*filter)[s]) continue;
    const StateId is = rc.image(s);
    for (StateId t : c.successors(s)) {
      if (filter && !(*filter)[t]) continue;
      if (is == rc.image(t) && !a.is_deadlock(is)) edges.emplace_back(s, t);
    }
  }
  std::vector<std::uint64_t> sigma(cn, 0);
  if (edges.empty()) return sigma;
  TransitionGraph sub = TransitionGraph::from_edges(cn, std::move(edges));
  Scc order(sub);  // acyclic => singleton components in reverse-topological order
  if (order.count() != cn) return std::nullopt;
  std::vector<StateId> by_comp(cn);
  for (StateId s = 0; s < cn; ++s) by_comp[order.component(s)] = s;
  for (StateId comp = 0; comp < cn; ++comp) {
    StateId s = by_comp[comp];
    for (StateId t : sub.successors(s)) sigma[s] = std::max(sigma[s], sigma[t] + 1);
  }
  return sigma;
}

std::vector<std::uint64_t> scc_rho(const RefinementChecker& rc) {
  const StateId cn = rc.c_graph().num_states();
  const Scc& scc = rc.c_scc();
  std::vector<std::uint64_t> rho(cn);
  for (StateId s = 0; s < cn; ++s) rho[s] = scc.component(s);
  return rho;
}

std::optional<JobCertificate> make_positive(const RefinementChecker& rc, Relation r,
                                            const CertifyOptions& opts) {
  const TransitionGraph& c = rc.c_graph();
  const TransitionGraph& a = rc.a_graph();
  const StateId cn = c.num_states();
  JobCertificate cert;
  cert.positive = true;

  if (r == Relation::kStabilizing) {
    auto sc = make_certificate(rc);
    if (!sc) return std::nullopt;
    cert.stab = std::move(*sc);
    return cert;
  }

  std::vector<char> region;
  if (r != Relation::kEverywhere) {
    region = to_chars(reachable_from(c, rc.c_initial()));
    cert.c_region = region;
  }

  // sigma: global for the relations whose stutter condition is global;
  // region-restricted for refinement_init (a stutter cycle outside the
  // reachable region does not matter there).
  auto sigma = stutter_sigma(rc, r == Relation::kRefinementInit ? &region : nullptr);
  if (!sigma) return std::nullopt;
  cert.sigma = std::move(*sigma);

  if (r == Relation::kConvergence || r == Relation::kEventually) cert.rho = scc_rho(rc);

  if (r == Relation::kConvergence) {
    // Every non-exact, non-stutter edge must be Compressed; store the
    // dropped A-path proving it.
    for (StateId s = 0; s < cn; ++s) {
      const StateId is = rc.image(s);
      for (StateId t : c.successors(s)) {
        const StateId it = rc.image(t);
        if (is == it || a.has_edge(is, it)) continue;
        if (cert.compressed.size() >= opts.max_compressed_witnesses) return std::nullopt;
        auto path = find_path(a, {is}, it);
        if (!path) return std::nullopt;  // Invalid edge: the verdict cannot be positive
        cert.compressed.push_back({s, t, std::move(path->states)});
      }
    }
  }
  return cert;
}

std::optional<JobCertificate> make_negative(const RefinementChecker& rc, Relation r,
                                            const CheckResult& result) {
  const TransitionGraph& c = rc.c_graph();
  const TransitionGraph& a = rc.a_graph();
  const std::vector<StateId>& w = result.witness.states;
  JobCertificate cert;
  cert.positive = false;

  if (r == Relation::kStabilizing && rc.a_initial().empty()) {
    cert.kind = ViolationKind::kNoAInit;
    return cert;
  }
  if (w.empty()) return std::nullopt;

  // Evidence for the init-scoped component must be rooted at I_C; the
  // path is omitted when the witness itself starts there.
  auto rooted = [&](StateId target) -> bool {
    for (StateId i : rc.c_initial())
      if (i == target) return true;
    auto p = find_path(c, rc.c_initial(), target);
    if (!p) return false;
    cert.init_path = std::move(p->states);
    return true;
  };
  auto a_reachable_chars = [&] { return to_chars(rc.a_reachable()); };

  if (w.size() == 1) {
    const StateId s = w[0];
    if (!c.is_deadlock(s)) return std::nullopt;
    const StateId is = rc.image(s);
    if (r == Relation::kStabilizing) {
      if (!a.is_deadlock(is)) {
        cert.kind = ViolationKind::kDeadlock;
      } else {
        if (rc.a_reachable().test(is)) return std::nullopt;
        cert.kind = ViolationKind::kUnreachableImage;
        cert.a_closed = a_reachable_chars();
      }
    } else {
      if (a.is_deadlock(is)) return std::nullopt;
      cert.kind = ViolationKind::kDeadlock;
      if (r == Relation::kRefinementInit && !rooted(s)) return std::nullopt;
    }
    return cert;
  }

  bool has_non_ta = false;  // some edge with differing images not in T_A
  bool all_stutter = true;
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    const StateId iu = rc.image(w[i]), iv = rc.image(w[i + 1]);
    if (iu != iv) {
      all_stutter = false;
      if (!a.has_edge(iu, iv)) has_non_ta = true;
    }
  }

  if (w.front() == w.back()) {  // cycle witness
    if (has_non_ta) {
      cert.kind = ViolationKind::kBadCycle;
      if (r == Relation::kRefinementInit && !rooted(w.front())) return std::nullopt;
    } else if (all_stutter && !a.is_deadlock(rc.image(w.front()))) {
      cert.kind = ViolationKind::kStutterCycle;
      if (r == Relation::kRefinementInit && !rooted(w.front())) return std::nullopt;
    } else {
      // Every edge follows A (or stutters at a deadlock image): only
      // stabilization can still fail here, via an unreachable image.
      if (r != Relation::kStabilizing) return std::nullopt;
      bool outside = false;
      for (StateId u : w) outside |= !rc.a_reachable().test(rc.image(u));
      if (!outside) return std::nullopt;
      cert.kind = ViolationKind::kUnreachableImage;
      cert.a_closed = a_reachable_chars();
    }
    return cert;
  }

  // Path witness ending at the violating edge.
  if (r == Relation::kStabilizing) return std::nullopt;
  const StateId u = w[w.size() - 2], v = w.back();
  const StateId iu = rc.image(u), iv = rc.image(v);
  if (iu == iv || a.has_edge(iu, iv)) return std::nullopt;
  if (r == Relation::kConvergence) {
    // Distinguish the global Invalid-edge violation (needs a separating
    // set) from the init-scoped Compressed-edge one (needs rooting).
    util::DenseBitset from_iu = reachable_from(a, {iu});
    if (!from_iu.test(iv)) {
      cert.kind = ViolationKind::kInvalidEdge;
      cert.a_closed = to_chars(from_iu);
      return cert;
    }
  }
  cert.kind = ViolationKind::kBadEdge;
  if (r != Relation::kEverywhere && !rooted(w.front())) return std::nullopt;
  return cert;
}

// ---------------------------------------------------------------- validation

struct Ctx {
  const TransitionGraph& c;
  const TransitionGraph& a;
  const std::vector<StateId>& c_init;
  const std::vector<StateId>& a_init;
  const std::vector<StateId>& alpha;
  StateId cn, an;

  StateId img(StateId s) const { return alpha.empty() ? s : alpha[s]; }
};

CheckResult validate_everywhere_edges(const Ctx& x, const std::vector<std::uint64_t>& sigma) {
  for (StateId s = 0; s < x.cn; ++s) {
    const StateId is = x.img(s);
    for (StateId t : x.c.successors(s)) {
      const StateId it = x.img(t);
      if (is == it) {
        if (!x.a.is_deadlock(is) && sigma[t] >= sigma[s])
          return CheckResult::fail("certificate: stutter edge does not decrease sigma",
                                   Trace{{s, t}});
      } else if (!x.a.has_edge(is, it)) {
        return CheckResult::fail("certificate: edge is neither exact nor stutter",
                                 Trace{{s, t}});
      }
    }
    if (x.c.is_deadlock(s) && !x.a.is_deadlock(is))
      return CheckResult::fail("certificate: C deadlock image is not an A deadlock",
                               Trace{{s}});
  }
  return CheckResult::ok();
}

/// The init-scoped component shared by refinement_init, convergence and
/// eventually: `c_region` must contain I_C, be closed under T_C, and
/// every member edge must be Exact or Stutter (with sigma progress at
/// non-deadlock images); member deadlocks must map to A-deadlocks.
CheckResult validate_init_region(const Ctx& x, const JobCertificate& cert) {
  if (x.c_init.empty()) return CheckResult::ok();  // vacuous: no computations from I_C
  if (cert.c_region.size() != x.cn)
    return CheckResult::fail("certificate: region size does not match C");
  if (cert.sigma.size() != x.cn)
    return CheckResult::fail("certificate: sigma size does not match C");
  for (StateId i : x.c_init)
    if (!cert.c_region[i])
      return CheckResult::fail("certificate: region omits an initial state", Trace{{i}});
  for (StateId s = 0; s < x.cn; ++s) {
    if (!cert.c_region[s]) continue;
    const StateId is = x.img(s);
    for (StateId t : x.c.successors(s)) {
      if (!cert.c_region[t])
        return CheckResult::fail("certificate: region is not closed under T_C",
                                 Trace{{s, t}});
      const StateId it = x.img(t);
      if (is == it) {
        if (!x.a.is_deadlock(is) && cert.sigma[t] >= cert.sigma[s])
          return CheckResult::fail(
              "certificate: region stutter edge does not decrease sigma", Trace{{s, t}});
      } else if (!x.a.has_edge(is, it)) {
        return CheckResult::fail("certificate: region edge is neither exact nor stutter",
                                 Trace{{s, t}});
      }
    }
    if (x.c.is_deadlock(s) && !x.a.is_deadlock(is))
      return CheckResult::fail(
          "certificate: region C deadlock image is not an A deadlock", Trace{{s}});
  }
  return CheckResult::ok();
}

CheckResult validate_convergence(const Ctx& x, const JobCertificate& cert) {
  if (cert.rho.size() != x.cn || cert.sigma.size() != x.cn)
    return CheckResult::fail("certificate: rho/sigma size does not match C");
  std::map<std::pair<StateId, StateId>, const JobCertificate::APath*> by_edge;
  for (const auto& p : cert.compressed) by_edge[{p.s, p.t}] = &p;
  for (StateId s = 0; s < x.cn; ++s) {
    const StateId is = x.img(s);
    for (StateId t : x.c.successors(s)) {
      const StateId it = x.img(t);
      if (cert.rho[t] > cert.rho[s])
        return CheckResult::fail("certificate: edge increases rho", Trace{{s, t}});
      if (is == it) {
        if (!x.a.is_deadlock(is) && cert.sigma[t] >= cert.sigma[s])
          return CheckResult::fail("certificate: stutter edge does not decrease sigma",
                                   Trace{{s, t}});
      } else if (!x.a.has_edge(is, it)) {
        // Must be Compressed (A-path witness) and off every cycle
        // (strict rho decrease; cycles have constant rho).
        if (cert.rho[t] >= cert.rho[s])
          return CheckResult::fail(
              "certificate: compressed edge does not strictly decrease rho", Trace{{s, t}});
        auto found = by_edge.find({s, t});
        if (found == by_edge.end())
          return CheckResult::fail("certificate: compressed edge lacks its A-path witness",
                                   Trace{{s, t}});
        const auto& path = found->second->path;
        if (path.size() < 2 || path.front() != is || path.back() != it)
          return CheckResult::fail("certificate: compressed-edge A-path has wrong endpoints",
                                   Trace{{s, t}});
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
          if (path[i] >= x.an || !x.a.has_edge(path[i], path[i + 1]))
            return CheckResult::fail("certificate: compressed-edge A-path is not a path of A",
                                     Trace{{s, t}});
      }
    }
    if (x.c.is_deadlock(s) && !x.a.is_deadlock(is))
      return CheckResult::fail("certificate: C deadlock image is not an A deadlock",
                               Trace{{s}});
  }
  return validate_init_region(x, cert);
}

CheckResult validate_eventually(const Ctx& x, const JobCertificate& cert) {
  if (cert.rho.size() != x.cn || cert.sigma.size() != x.cn)
    return CheckResult::fail("certificate: rho/sigma size does not match C");
  for (StateId s = 0; s < x.cn; ++s) {
    const StateId is = x.img(s);
    for (StateId t : x.c.successors(s)) {
      const StateId it = x.img(t);
      if (cert.rho[t] > cert.rho[s])
        return CheckResult::fail("certificate: edge increases rho", Trace{{s, t}});
      if (is == it) {
        if (!x.a.is_deadlock(is) && cert.sigma[t] >= cert.sigma[s])
          return CheckResult::fail("certificate: stutter edge does not decrease sigma",
                                   Trace{{s, t}});
      } else if (cert.rho[t] == cert.rho[s] && !x.a.has_edge(is, it)) {
        // rho-equal over-approximates "on a cycle": such edges must be
        // Exact (or Stutter, handled above).
        return CheckResult::fail("certificate: rho-equal edge is neither exact nor stutter",
                                 Trace{{s, t}});
      }
    }
    if (x.c.is_deadlock(s) && !x.a.is_deadlock(is))
      return CheckResult::fail("certificate: C deadlock image is not an A deadlock",
                               Trace{{s}});
  }
  return validate_init_region(x, cert);
}

CheckResult validate_positive(const Ctx& x, Relation r, const JobCertificate& cert) {
  switch (r) {
    case Relation::kEverywhere:
      if (cert.sigma.size() != x.cn)
        return CheckResult::fail("certificate: sigma size does not match C");
      return validate_everywhere_edges(x, cert.sigma);
    case Relation::kRefinementInit:
      return validate_init_region(x, cert);
    case Relation::kConvergence:
      return validate_convergence(x, cert);
    case Relation::kEventually:
      return validate_eventually(x, cert);
    case Relation::kStabilizing:
      if (x.a_init.empty())
        return CheckResult::fail("certificate: stabilizing claim with empty I_A");
      return validate_certificate(x.c, x.a, x.a_init, x.alpha, cert.stab);
  }
  return CheckResult::fail("certificate: unknown relation");
}

bool is_c_path(const Ctx& x, const std::vector<StateId>& states) {
  for (StateId s : states)
    if (s >= x.cn) return false;
  for (std::size_t i = 0; i + 1 < states.size(); ++i)
    if (!x.c.has_edge(states[i], states[i + 1])) return false;
  return true;
}

bool in_c_init(const Ctx& x, StateId s) {
  for (StateId i : x.c_init)
    if (i == s) return true;
  return false;
}

/// Init-scoped evidence must reach the witness from I_C: either the
/// witness starts there, or `init_path` is a C-path from I_C to it.
CheckResult check_rooted(const Ctx& x, const std::vector<StateId>& w,
                         const JobCertificate& cert) {
  if (in_c_init(x, w.front())) return CheckResult::ok();
  if (cert.init_path.empty() || !is_c_path(x, cert.init_path) ||
      !in_c_init(x, cert.init_path.front()) || cert.init_path.back() != w.front())
    return CheckResult::fail("certificate: witness is not rooted at an initial state of C");
  return CheckResult::ok();
}

/// `set` must be closed under T_A; anchor membership is checked by the
/// caller (I_A for unreachable-image claims, the source image for
/// invalid-edge claims).
CheckResult check_a_closed(const Ctx& x, const std::vector<char>& set) {
  if (set.size() != x.an)
    return CheckResult::fail("certificate: separating set size does not match A");
  for (StateId u = 0; u < x.an; ++u) {
    if (!set[u]) continue;
    for (StateId v : x.a.successors(u))
      if (!set[v])
        return CheckResult::fail("certificate: separating set is not closed under T_A",
                                 Trace{{u, v}});
  }
  return CheckResult::ok();
}

CheckResult validate_negative(const Ctx& x, Relation r, const Trace& witness,
                              const JobCertificate& cert) {
  const std::vector<StateId>& w = witness.states;

  if (cert.kind == ViolationKind::kNoAInit) {
    if (r == Relation::kStabilizing && x.a_init.empty()) return CheckResult::ok();
    return CheckResult::fail("certificate: no-a-init evidence for a relation with I_A");
  }

  if (w.empty() || !is_c_path(x, w))
    return CheckResult::fail("certificate: witness is not a path of C");
  const bool cycle = w.size() >= 2 && w.front() == w.back();

  switch (cert.kind) {
    case ViolationKind::kDeadlock: {
      if (w.size() != 1 || !x.c.is_deadlock(w[0]))
        return CheckResult::fail("certificate: deadlock evidence is not a C deadlock");
      if (x.a.is_deadlock(x.img(w[0])))
        return CheckResult::fail("certificate: deadlock image IS an A deadlock");
      if (r == Relation::kRefinementInit) return check_rooted(x, w, cert);
      return CheckResult::ok();  // the deadlock condition is global elsewhere
    }
    case ViolationKind::kBadEdge: {
      if (r == Relation::kStabilizing)
        return CheckResult::fail("certificate: a bad edge alone does not refute stabilization");
      if (w.size() < 2) return CheckResult::fail("certificate: bad-edge evidence too short");
      const StateId iu = x.img(w[w.size() - 2]), iv = x.img(w.back());
      if (iu == iv || x.a.has_edge(iu, iv))
        return CheckResult::fail("certificate: final edge is exact or stutter after all");
      if (r == Relation::kEverywhere) return CheckResult::ok();
      // For the init-scoped relations (and the init component of
      // convergence/eventually, where off-cycle non-T_A edges may be
      // legal globally) the edge must be reachable from I_C.
      return check_rooted(x, w, cert);
    }
    case ViolationKind::kBadCycle: {
      if (!cycle) return CheckResult::fail("certificate: bad-cycle evidence is not a cycle");
      bool found = false;
      for (std::size_t i = 0; i + 1 < w.size(); ++i) {
        const StateId iu = x.img(w[i]), iv = x.img(w[i + 1]);
        found |= iu != iv && !x.a.has_edge(iu, iv);
      }
      if (!found)
        return CheckResult::fail("certificate: cycle has no edge outside T_A");
      if (r == Relation::kRefinementInit) return check_rooted(x, w, cert);
      return CheckResult::ok();
    }
    case ViolationKind::kStutterCycle: {
      if (!cycle)
        return CheckResult::fail("certificate: stutter-cycle evidence is not a cycle");
      const StateId i0 = x.img(w.front());
      for (StateId u : w)
        if (x.img(u) != i0)
          return CheckResult::fail("certificate: cycle is not pure stutter");
      if (x.a.is_deadlock(i0))
        return CheckResult::fail("certificate: stutter-cycle image IS an A deadlock");
      if (r == Relation::kRefinementInit) return check_rooted(x, w, cert);
      return CheckResult::ok();
    }
    case ViolationKind::kInvalidEdge: {
      if (r == Relation::kStabilizing)
        return CheckResult::fail(
            "certificate: an invalid edge alone does not refute stabilization");
      if (w.size() < 2)
        return CheckResult::fail("certificate: invalid-edge evidence too short");
      const StateId iu = x.img(w[w.size() - 2]), iv = x.img(w.back());
      if (iu == iv)
        return CheckResult::fail("certificate: invalid-edge endpoints stutter");
      if (auto cr = check_a_closed(x, cert.a_closed); !cr.holds) return cr;
      if (!cert.a_closed[iu] || cert.a_closed[iv])
        return CheckResult::fail("certificate: separating set does not separate the images");
      if (r == Relation::kRefinementInit || r == Relation::kEventually)
        return check_rooted(x, w, cert);
      return CheckResult::ok();
    }
    case ViolationKind::kUnreachableImage: {
      if (r != Relation::kStabilizing)
        return CheckResult::fail(
            "certificate: unreachable-image evidence only refutes stabilization");
      if (auto cr = check_a_closed(x, cert.a_closed); !cr.holds) return cr;
      for (StateId i : x.a_init)
        if (!cert.a_closed[i])
          return CheckResult::fail("certificate: separating set omits an initial state of A");
      if (w.size() == 1) {
        if (!x.c.is_deadlock(w[0]))
          return CheckResult::fail("certificate: single-state evidence is not a C deadlock");
        if (cert.a_closed[x.img(w[0])])
          return CheckResult::fail("certificate: deadlock image is inside the separating set");
        return CheckResult::ok();
      }
      if (!cycle)
        return CheckResult::fail("certificate: unreachable-image evidence is not a cycle");
      for (StateId u : w)
        if (!cert.a_closed[x.img(u)]) return CheckResult::ok();
      return CheckResult::fail("certificate: every cycle image is inside the separating set");
    }
    case ViolationKind::kNoAInit:
      break;  // handled above
  }
  return CheckResult::fail("certificate: unknown violation kind");
}

}  // namespace

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kDeadlock:
      return "deadlock";
    case ViolationKind::kBadEdge:
      return "bad-edge";
    case ViolationKind::kBadCycle:
      return "bad-cycle";
    case ViolationKind::kStutterCycle:
      return "stutter-cycle";
    case ViolationKind::kInvalidEdge:
      return "invalid-edge";
    case ViolationKind::kNoAInit:
      return "no-a-init";
    case ViolationKind::kUnreachableImage:
      return "unreachable-image";
  }
  return "?";
}

ViolationKind violation_kind_from_string(const std::string& name) {
  for (ViolationKind k :
       {ViolationKind::kDeadlock, ViolationKind::kBadEdge, ViolationKind::kBadCycle,
        ViolationKind::kStutterCycle, ViolationKind::kInvalidEdge, ViolationKind::kNoAInit,
        ViolationKind::kUnreachableImage})
    if (name == to_string(k)) return k;
  throw std::runtime_error("unknown violation kind: " + name);
}

std::optional<JobCertificate> make_job_certificate(const RefinementChecker& rc, Relation r,
                                                   const CheckResult& result,
                                                   const CertifyOptions& opts) {
  return result.holds ? make_positive(rc, r, opts) : make_negative(rc, r, result);
}

CheckResult validate_job_certificate(Relation r, bool claimed_holds, const Trace& witness,
                                     const JobCertificate& cert, const TransitionGraph& c,
                                     const TransitionGraph& a,
                                     const std::vector<StateId>& c_init,
                                     const std::vector<StateId>& a_init,
                                     const std::vector<StateId>& alpha) {
  Ctx x{c, a, c_init, a_init, alpha, c.num_states(), a.num_states()};
  if (alpha.empty() && x.cn != x.an)
    return CheckResult::fail("certificate: identity alpha requires equal state counts");
  if (!alpha.empty() && alpha.size() != x.cn)
    return CheckResult::fail("certificate: alpha table size mismatch");
  if (cert.positive != claimed_holds)
    return CheckResult::fail("certificate: polarity does not match the stored verdict");
  return claimed_holds ? validate_positive(x, r, cert) : validate_negative(x, r, witness, cert);
}

}  // namespace cref::service
