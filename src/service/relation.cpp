#include "service/relation.hpp"

#include <stdexcept>

#include "refinement/checker.hpp"

namespace cref::service {

const char* to_string(Relation r) {
  switch (r) {
    case Relation::kRefinementInit:
      return "refinement-init";
    case Relation::kEverywhere:
      return "everywhere";
    case Relation::kConvergence:
      return "convergence";
    case Relation::kEventually:
      return "eventually";
    case Relation::kStabilizing:
      return "stabilizing";
  }
  return "?";
}

Relation relation_from_string(const std::string& name) {
  for (Relation r : kAllRelations)
    if (name == to_string(r)) return r;
  throw std::runtime_error("unknown relation: " + name);
}

CheckResult run_relation(const RefinementChecker& rc, Relation r) {
  switch (r) {
    case Relation::kRefinementInit:
      return rc.refinement_init();
    case Relation::kEverywhere:
      return rc.everywhere_refinement();
    case Relation::kConvergence:
      return rc.convergence_refinement();
    case Relation::kEventually:
      return rc.everywhere_eventually_refinement();
    case Relation::kStabilizing:
      return rc.stabilizing_to();
  }
  return CheckResult::fail("unknown relation");
}

}  // namespace cref::service
