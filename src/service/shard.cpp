#include "service/shard.hpp"

#include <stdexcept>
#include <utility>

namespace cref::service {

namespace {

// Shard-indexed work always runs one shard per grab: the default
// resolved_chunk would hand all S shard indices to one worker.
EngineOptions per_shard(const EngineOptions& opts) {
  EngineOptions eo = opts;
  eo.chunk_size = 1;
  return eo;
}

StateId local_count(StateId n, std::size_t k, std::size_t shards) {
  // States owned by shard k: k, k+S, k+2S, ... below n.
  if (n <= static_cast<StateId>(k)) return 0;
  return (n - static_cast<StateId>(k) + static_cast<StateId>(shards) - 1) /
         static_cast<StateId>(shards);
}

}  // namespace

ShardedGraph ShardedGraph::partition(const TransitionGraph& g, std::size_t shards,
                                     const EngineOptions& opts) {
  if (shards == 0) throw std::invalid_argument("ShardedGraph: shards must be >= 1");
  ShardedGraph sg;
  sg.n_ = g.num_states();
  sg.edges_ = g.num_edges();
  sg.slices_.resize(shards);
  parallel_chunks(shards, per_shard(opts), [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      Slice& sl = sg.slices_[k];
      const StateId ln = local_count(sg.n_, k, shards);
      sl.offsets.assign(ln + 1, 0);
      std::size_t total = 0;
      for (StateId l = 0; l < ln; ++l) {
        total += g.successors(l * shards + k).size();
        sl.offsets[l + 1] = total;
      }
      sl.targets.reserve(total);
      for (StateId l = 0; l < ln; ++l) {
        auto succ = g.successors(l * shards + k);
        sl.targets.insert(sl.targets.end(), succ.begin(), succ.end());
      }
    }
  });
  return sg;
}

ShardedGraph ShardedGraph::build(const System& sys, std::size_t shards, const EngineOptions& opts,
                                 StateId max_states) {
  if (shards == 0) throw std::invalid_argument("ShardedGraph: shards must be >= 1");
  const StateId n = sys.space().size();
  if (n > max_states)
    throw std::length_error("ShardedGraph::build: state space exceeds max_states");
  ShardedGraph sg;
  sg.n_ = n;
  sg.slices_.resize(shards);
  std::vector<std::size_t> shard_edges(shards, 0);
  parallel_chunks(shards, per_shard(opts), [&](std::size_t, std::size_t begin, std::size_t end) {
    SuccessorScratch scratch;
    for (std::size_t k = begin; k < end; ++k) {
      Slice& sl = sg.slices_[k];
      const StateId ln = local_count(n, k, shards);
      sl.offsets.assign(ln + 1, 0);
      // Count pass: per-state degrees, prefix-summed into offsets.
      for (StateId l = 0; l < ln; ++l) {
        scratch.out.clear();
        sl.offsets[l + 1] =
            sl.offsets[l] + sys.successors_into(l * shards + k, scratch);
      }
      // Fill pass: every slice lands at its precomputed offset.
      sl.targets.resize(sl.offsets[ln]);
      for (StateId l = 0; l < ln; ++l) {
        scratch.out.clear();
        sys.successors_into(l * shards + k, scratch);
        std::copy(scratch.out.begin(), scratch.out.end(), sl.targets.begin() + sl.offsets[l]);
      }
      shard_edges[k] = sl.targets.size();
    }
  });
  for (std::size_t e : shard_edges) sg.edges_ += e;
  return sg;
}

util::DenseBitset sharded_reachable_from(const ShardedGraph& g,
                                         const std::vector<StateId>& sources,
                                         const EngineOptions& opts) {
  const std::size_t shards = g.shards();
  const StateId n = g.num_states();
  const EngineOptions eo = per_shard(opts);

  struct ShardState {
    util::DenseBitset visited, frontier, next;
  };
  std::vector<ShardState> st(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    const StateId ln = g.local_states(k);
    st[k].visited.assign(ln);
    st[k].frontier.assign(ln);
    st[k].next.assign(ln);
  }
  for (StateId s : sources) {
    ShardState& sh = st[ShardedGraph::owner(s, shards)];
    const StateId l = s / shards;
    if (!sh.visited.test(l)) {
      sh.visited.set(l);
      sh.frontier.set(l);
    }
  }

  // out[src * shards + dst]: cross-shard targets discovered by `src`
  // this superstep, drained by `dst` after the barrier.
  std::vector<std::vector<StateId>> out(shards * shards);
  std::vector<char> active(shards, 1);

  auto any_active = [&] {
    for (char a : active)
      if (a) return true;
    return false;
  };
  for (std::size_t k = 0; k < shards; ++k) active[k] = st[k].frontier.any();

  while (any_active()) {
    // Scan phase: each shard expands its own frontier; self-owned
    // targets are marked directly, foreign ones batched per destination.
    parallel_chunks(shards, eo, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        ShardState& sh = st[k];
        sh.frontier.for_each_set([&](std::size_t l) {
          const StateId s = static_cast<StateId>(l) * shards + static_cast<StateId>(k);
          for (StateId t : g.successors(s)) {
            const std::size_t dst = ShardedGraph::owner(t, shards);
            if (dst == k) {
              const StateId lt = t / shards;
              if (!sh.visited.test(lt)) {
                sh.visited.set(lt);
                sh.next.set(lt);
              }
            } else {
              out[k * shards + dst].push_back(t);
            }
          }
        });
      }
    });
    // Exchange phase (after the barrier above): each shard drains every
    // inbox addressed to it, then promotes next -> frontier.
    parallel_chunks(shards, eo, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        ShardState& sh = st[k];
        for (std::size_t src = 0; src < shards; ++src) {
          std::vector<StateId>& inbox = out[src * shards + k];
          for (StateId t : inbox) {
            const StateId lt = t / shards;
            if (!sh.visited.test(lt)) {
              sh.visited.set(lt);
              sh.next.set(lt);
            }
          }
          inbox.clear();
        }
        std::swap(sh.frontier, sh.next);
        sh.next.reset_all();
        active[k] = sh.frontier.any();
      }
    });
  }

  // Global assembly: bit l*S+k of the answer interleaves shards within
  // one 64-bit word, so the merge is serial by design (no shared-word
  // races); it is a single O(n) pass.
  util::DenseBitset result(n);
  for (std::size_t k = 0; k < shards; ++k)
    st[k].visited.for_each_set([&](std::size_t l) {
      result.set(static_cast<StateId>(l) * shards + static_cast<StateId>(k));
    });
  return result;
}

}  // namespace cref::service
