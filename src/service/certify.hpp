#pragma once

// Trust-free certification of cached verdicts, for ALL five relations
// and BOTH polarities. A cache entry is served only after its
// certificate re-proves the stored verdict against graphs rebuilt
// locally from the request — the entry itself is never trusted, so a
// corrupted, stale, or even key-colliding entry can only cause a
// recompute, never a wrong answer.
//
// Positive certificates reduce each relation to per-edge rank
// conditions in the style of StabilizationCertificate (DESIGN.md §7):
//
//   sigma  strictly decreases along stutter edges whose image is not an
//          A-deadlock — no computation's image can stall forever at a
//          non-final state of A (all four refinement relations).
//   rho    is non-increasing along EVERY edge and strictly decreasing
//          along the edges a cycle must avoid — which makes "rho-equal"
//          a sound over-approximation of "on a cycle" (convergence:
//          compressed/invalid edges strictly decrease; eventually:
//          rho-equal edges must be Exact/Stutter).
//   region a claimed superset of reachable(I_C), checked closed under
//          T_C, on which the init-scoped conditions are enforced.
//   compressed  per compressed edge of a convergence certificate, the
//          dropped A-path proving the edge is Compressed, not Invalid.
//
// Negative certificates are replayable evidence: the stored witness is
// re-walked edge by edge through T_C, a locally-checkable violation
// condition is re-established on it (ViolationKind), and claims of
// NON-reachability in A ("image not reachable") are proved by an
// A-side closed separating set — contains the anchor states, closed
// under T_A, excludes the claimed-unreachable image — validated in one
// O(E_A) pass.
//
// Validators use only graph primitives (successors, has_edge,
// is_deadlock) and share no analysis code with the engine.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "refinement/certificate.hpp"
#include "refinement/check_result.hpp"
#include "service/relation.hpp"

namespace cref {
class RefinementChecker;
}

namespace cref::service {

/// The locally-checkable violation condition a negative certificate
/// re-establishes on the stored witness.
enum class ViolationKind : std::uint8_t {
  kDeadlock,          // single-state witness: C-deadlock with a non-A-deadlock image
  kBadEdge,           // path witness: last edge has differing images not in T_A
  kBadCycle,          // cycle witness containing an edge with differing images not in T_A
  kStutterCycle,      // pure-stutter cycle whose image is not an A-deadlock
  kInvalidEdge,       // path witness: last edge's target image separated from the
                      // source image by `a_closed` (anchored at the source image)
  kNoAInit,           // stabilizing: A has no initial states
  kUnreachableImage,  // stabilizing: cycle/deadlock witness with an image outside
                      // `a_closed` (anchored at I_A)
};

const char* to_string(ViolationKind k);
ViolationKind violation_kind_from_string(const std::string& name);

/// Certificate of one cached (relation, verdict) pair. Positive and
/// negative components share the struct so cache entries serialize one
/// shape; unused components stay empty.
struct JobCertificate {
  bool positive = true;

  // Positive components.
  std::vector<std::uint64_t> rho;    // convergence / eventually
  std::vector<std::uint64_t> sigma;  // the four refinement relations
  std::vector<char> c_region;        // init-scoped relations: superset of reachable(I_C)
  struct APath {
    StateId s = 0, t = 0;         // the compressed concrete edge
    std::vector<StateId> path;    // A-path image(s) -> image(t), length >= 1
  };
  std::vector<APath> compressed;     // convergence
  StabilizationCertificate stab;     // stabilizing

  // Negative components (the witness itself lives in the cached
  // CheckResult and is passed to the validator alongside).
  ViolationKind kind = ViolationKind::kDeadlock;
  std::vector<StateId> init_path;    // C-path from I_C to the witness (init-scoped evidence)
  std::vector<char> a_closed;        // A-side closed separating set

  // Static refinement certificate (GCL convergence jobs proved by the
  // static prover, src/prover/refine.hpp): the serialized
  // RefinementCertificate ("refine-cert" text). When present, warm hits
  // revalidate it against the request's ASTs alone — no graph is ever
  // built. Empty for graph-certified entries.
  std::string refine;
};

struct CertifyOptions {
  /// Convergence certificates store one A-path per compressed edge;
  /// above this many the instance is not certified (the entry is cached
  /// without a certificate and warm hits recompute).
  std::size_t max_compressed_witnesses = 4096;
};

/// Builds the certificate for `result` == run_relation(rc, r). Returns
/// nullopt when the instance is not certifiable (witness shape outside
/// the evidence vocabulary, or over the compressed-witness cap) — never
/// a wrong certificate.
std::optional<JobCertificate> make_job_certificate(const RefinementChecker& rc, Relation r,
                                                   const CheckResult& result,
                                                   const CertifyOptions& opts = {});

/// Independently re-proves `claimed_holds` (and, for negatives, that
/// `witness` is genuine evidence) against the given graphs. ok() iff
/// the certificate establishes the verdict; any failure names the
/// broken condition. Accepting is SOUND: a validated positive implies
/// the relation holds, a validated negative implies it fails with the
/// given witness.
CheckResult validate_job_certificate(Relation r, bool claimed_holds, const Trace& witness,
                                     const JobCertificate& cert, const TransitionGraph& c,
                                     const TransitionGraph& a,
                                     const std::vector<StateId>& c_init,
                                     const std::vector<StateId>& a_init,
                                     const std::vector<StateId>& alpha);

}  // namespace cref::service
