#pragma once

// Shard-partitioned state space + BSP reachability. States are
// hash-partitioned across shards by owner(s) = s mod S (with the local
// index s div S, so both directions are O(1) and the shards stay
// balanced to within one state). Each shard owns the CSR slice of its
// states' successor lists plus DenseBitset visited/frontier sets over
// its local index space; cross-shard edges are exchanged in
// per-superstep outbox batches, BSP-style: within a superstep a shard
// touches only its own structures and its own outboxes, and the
// superstep barrier (thread join) publishes every outbox to its
// destination shard.
//
// The computed set is the exact reachable set, so the final global
// bitset is BIT-IDENTICAL to serial reachable_from at any shard count —
// the property the 200-instance differential suite pins.

#include <cstddef>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/system.hpp"
#include "util/bitset.hpp"
#include "util/parallel.hpp"

namespace cref::service {

class ShardedGraph {
 public:
  /// Re-partitions an already-materialized graph into `shards` slices.
  static ShardedGraph partition(const TransitionGraph& g, std::size_t shards,
                                const EngineOptions& opts = {});

  /// Materializes `sys` directly into shard slices: each shard runs its
  /// own two-pass (count, fill) scan over the states it owns, in
  /// parallel across shards. Equivalent to partition(build(sys)) without
  /// ever holding the monolithic CSR. Throws std::length_error if the
  /// space exceeds `max_states`.
  static ShardedGraph build(const System& sys, std::size_t shards, const EngineOptions& opts = {},
                            StateId max_states = (1ull << 26));

  std::size_t shards() const { return slices_.size(); }
  StateId num_states() const { return n_; }
  std::size_t num_edges() const { return edges_; }

  static std::size_t owner(StateId s, std::size_t shards) {
    return static_cast<std::size_t>(s % shards);
  }

  /// States owned by shard `k`.
  StateId local_states(std::size_t k) const {
    return static_cast<StateId>(slices_[k].offsets.size() - 1);
  }
  std::size_t local_edges(std::size_t k) const { return slices_[k].targets.size(); }

  /// Sorted successor list of global state `s` (served by its owner's
  /// slice; identical to TransitionGraph::successors(s)).
  std::span<const StateId> successors(StateId s) const {
    const Slice& sl = slices_[owner(s, slices_.size())];
    const StateId l = s / static_cast<StateId>(slices_.size());
    return {sl.targets.data() + sl.offsets[l], sl.targets.data() + sl.offsets[l + 1]};
  }

 private:
  struct Slice {
    std::vector<std::size_t> offsets;  // local_states + 1
    std::vector<StateId> targets;      // global ids
  };

  std::vector<Slice> slices_;
  StateId n_ = 0;
  std::size_t edges_ = 0;
};

/// Reachable set from `sources` (inclusive) as a global DenseBitset,
/// computed by per-shard frontier sweeps with batched cross-shard edge
/// exchange. Bit-identical to reachable_from on the unsharded graph.
util::DenseBitset sharded_reachable_from(const ShardedGraph& g,
                                         const std::vector<StateId>& sources,
                                         const EngineOptions& opts = {});

}  // namespace cref::service
