#pragma once

// The five relations of the paper as a closed enum — the job vocabulary
// of the checking service. Every wire request, cache entry, and batch
// job names its relation through this type, and `run_relation`
// dispatches to the corresponding RefinementChecker method.

#include <cstdint>
#include <string>

#include "refinement/check_result.hpp"

namespace cref {
class RefinementChecker;
}

namespace cref::service {

enum class Relation : std::uint8_t {
  kRefinementInit,  // [C (= A]_init
  kEverywhere,      // [C (= A]
  kConvergence,     // [C <~ A]
  kEventually,      // [C ee A]
  kStabilizing,     // C stabilizes to A
};

inline constexpr Relation kAllRelations[] = {
    Relation::kRefinementInit, Relation::kEverywhere, Relation::kConvergence,
    Relation::kEventually, Relation::kStabilizing};

/// Wire name: "refinement-init", "everywhere", "convergence",
/// "eventually", "stabilizing".
const char* to_string(Relation r);

/// Parses a wire name; throws std::runtime_error on an unknown one.
Relation relation_from_string(const std::string& name);

/// Runs the relation on a checker. The result is byte-identical to
/// calling the corresponding method directly.
CheckResult run_relation(const RefinementChecker& rc, Relation r);

}  // namespace cref::service
