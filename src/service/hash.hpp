#pragma once

// Canonical structural hashing of checking jobs. Two jobs that are
// guaranteed to produce byte-identical answers must key the same cache
// line, so the digests are deliberately insensitive to every
// answer-irrelevant presentation detail:
//
//  - hash_graph ignores the order in which edges were inserted (CSR
//    construction already sorts successor lists; the digest additionally
//    combines edges commutatively, so any edge enumeration of the same
//    relation hashes equal).
//  - hash_state_set ignores the order and multiplicity of init states.
//  - hash_gcl hashes the AST, not the text: whitespace, comments, and
//    the ORDER of action declarations do not matter (a System's
//    successor sets are unions over actions), and neither do variable,
//    action, or system NAMES (answers mention only StateIds and
//    relation names). Variable order and cardinalities DO matter — they
//    define the mixed-radix state encoding.
//
// Digests are 128 bits (two independently-seeded 64-bit mixes), so
// accidental collisions are out of reach for any realistic cache; and
// because every cache hit is re-validated against locally rebuilt
// graphs before it is served (see service.hpp), even an engineered
// collision can only cause a cache miss-equivalent recompute, never a
// wrong answer.

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "service/relation.hpp"

namespace cref::gcl {
struct SystemAst;
}

namespace cref::service {

/// 128-bit structural digest; `hex()` is the on-disk cache filename stem.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest&, const Digest&) = default;

  /// 32 lowercase hex chars, hi then lo.
  std::string hex() const;
};

/// Digest of a single 64-bit value (two independent mixes).
Digest hash_u64(std::uint64_t v);

/// Order-DEPENDENT combine, for sequences: combine(a, b) != combine(b, a).
Digest combine(const Digest& a, const Digest& b);

/// Transition relation + state count, order-independent over edges.
Digest hash_graph(const TransitionGraph& g);

/// A set of states (init sets), order- and duplicate-independent.
Digest hash_state_set(const std::vector<StateId>& states);

/// An abstraction table (a function, so position matters). The empty
/// table (identity) has its own distinguished digest.
Digest hash_alpha(const std::vector<StateId>& alpha);

/// One side of a raw-automaton job: graph + init set.
Digest hash_side(const TransitionGraph& g, const std::vector<StateId>& init);

/// A parsed GCL program: action-order- and name-insensitive (see the
/// header comment), sensitive to variable order/cardinality, guard and
/// assignment structure, process ids, and the init predicate.
Digest hash_gcl(const gcl::SystemAst& ast);

/// The cache key of one (C, A, alpha, relation) job.
Digest job_key(const Digest& c_side, const Digest& a_side, const Digest& alpha, Relation r);

}  // namespace cref::service
