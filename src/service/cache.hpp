#pragma once

// Verified verdict cache: in-memory LRU over 128-bit job keys plus an
// optional on-disk store (one strict, versioned text file per key under
// `dir`). The cache is deliberately dumb storage — it never decides an
// answer. The service revalidates every hit's certificate against
// locally rebuilt graphs before serving it, so a tampered, truncated,
// version-skewed, or key-colliding entry can only cost a recompute.
// Accordingly, the parser is strict (any malformed field = miss) but
// parsing success proves nothing; the certificate validator does.
//
// Not internally synchronized: CheckService serializes access.

#include <cstddef>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/space.hpp"
#include "service/certify.hpp"
#include "service/hash.hpp"
#include "service/relation.hpp"

namespace cref::service {

/// One cached verdict: the complete CheckResult payload (reason and
/// witness are served back byte-identically) plus its certificate when
/// the instance was certifiable. An entry without a certificate is
/// stored for inspection but never served — warm lookups recompute.
struct CacheEntry {
  Relation relation = Relation::kRefinementInit;
  bool holds = false;
  std::string reason;
  std::vector<StateId> witness;
  std::optional<JobCertificate> certificate;
};

/// Versioned line-oriented text encoding ("cref-cache 2" header; the
/// version was bumped when certificates gained the embedded static
/// refinement blob — version-1 files parse as misses and recompute).
std::string serialize_entry(const CacheEntry& entry);

/// Strict inverse of serialize_entry: any unknown version, missing
/// field, trailing garbage, or malformed number yields nullopt (a cache
/// miss), never a best-effort entry.
std::optional<CacheEntry> parse_entry(const std::string& text);

class VerdictCache {
 public:
  /// `capacity` bounds the in-memory LRU (>= 1); `dir` (optional)
  /// enables the on-disk store, one "<key-hex>.entry" file per key.
  /// The directory is created on first store.
  explicit VerdictCache(std::size_t capacity = 1024, std::string dir = {});

  /// Memory first (refreshing recency), then disk; a disk hit is
  /// promoted into memory. nullopt on miss or malformed disk entry.
  std::optional<CacheEntry> lookup(const Digest& key);

  /// Inserts or overwrites in memory (evicting the least-recently-used
  /// entry past capacity) and, when enabled, on disk.
  void store(const Digest& key, const CacheEntry& entry);

  std::size_t size() const { return map_.size(); }
  const std::string& dir() const { return dir_; }

 private:
  struct Node {
    std::string key_hex;
    CacheEntry entry;
  };

  std::optional<CacheEntry> disk_lookup(const std::string& key_hex) const;
  void disk_store(const std::string& key_hex, const CacheEntry& entry) const;

  std::size_t capacity_;
  std::string dir_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> map_;
};

}  // namespace cref::service
