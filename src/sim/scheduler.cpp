#include "sim/scheduler.hpp"

#include "util/rng.hpp"

namespace cref::sim {

std::size_t RandomDaemon::pick(const System&, const StateVec&,
                               const std::vector<std::size_t>& enabled) {
  // util::uniform_below, not std::uniform_int_distribution: the draw
  // sequence must replay bit-identically on every platform (campaign
  // aggregates are part of the reproducibility contract, like
  // FaultInjector's goldens — scheduler_test.cpp pins the sequence).
  return enabled[util::uniform_below(rng_, enabled.size())];
}

std::size_t RoundRobinDaemon::pick(const System& sys, const StateVec&,
                                   const std::vector<std::size_t>& enabled) {
  const std::size_t total = sys.actions().size();
  for (std::size_t probe = 0; probe < total; ++probe) {
    std::size_t idx = (cursor_ + probe) % total;
    for (std::size_t e : enabled) {
      if (e == idx) {
        cursor_ = (idx + 1) % total;
        return idx;
      }
    }
  }
  return enabled.front();  // unreachable with a non-empty enabled list
}

std::size_t GreedyAdversaryDaemon::pick(const System& sys, const StateVec& state,
                                        const std::vector<std::size_t>& enabled) {
  std::size_t best = enabled.front();
  double best_score = -1e300;
  StateVec scratch;
  for (std::size_t e : enabled) {
    scratch = state;
    sys.actions()[e].effect(scratch);
    double s = score_(scratch);
    if (s > best_score) {
      best_score = s;
      best = e;
    }
  }
  return best;
}

}  // namespace cref::sim
