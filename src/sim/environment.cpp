#include "sim/environment.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace cref::sim {

EnvironmentSpec EnvironmentSpec::pristine() { return {}; }

EnvironmentSpec EnvironmentSpec::scramble() {
  EnvironmentSpec e;
  e.name = "scramble";
  e.scramble_start = true;
  return e;
}

EnvironmentSpec EnvironmentSpec::burst_of(std::size_t k) {
  EnvironmentSpec e;
  e.name = "burst:" + std::to_string(k);
  e.burst = k;
  return e;
}

EnvironmentSpec EnvironmentSpec::corruption(double rate, std::size_t vars) {
  EnvironmentSpec e;
  e.name = "corrupt:" + std::to_string(rate);
  e.scramble_start = true;  // the rate regime starts from an arbitrary state
  e.corruption_rate = rate;
  e.corruption_vars = vars;
  return e;
}

EnvironmentSpec EnvironmentSpec::crash_restart(double crash, double restart,
                                               std::size_t max_crashed) {
  EnvironmentSpec e;
  e.name = "crash:" + std::to_string(crash) + ":" + std::to_string(restart);
  e.scramble_start = true;
  e.crash_rate = crash;
  e.restart_rate = restart;
  e.max_crashed = max_crashed;
  return e;
}

namespace {

std::size_t owner_process_count(const System& sys) {
  int max_p = -1;
  for (const Action& a : sys.actions()) max_p = std::max(max_p, a.process);
  return static_cast<std::size_t>(max_p + 1);
}

}  // namespace

Environment::Environment(EnvironmentSpec spec, const System& sys, std::uint64_t seed)
    : spec_(std::move(spec)),
      space_(&sys.space()),
      fi_(seed),
      crashed_(owner_process_count(sys), 0) {}

void Environment::perturb_start(StateVec& s) {
  if (spec_.scramble_start) fi_.scramble(*space_, s);
  s.resize(space_->var_count(), 0);
  if (spec_.burst > 0) fi_.corrupt(*space_, s, spec_.burst);
}

bool Environment::pre_step_faults(StateVec& s) {
  // Fixed draw order — crash, restart, corruption — and every mechanism
  // consumes its Bernoulli draw whether or not the event can take
  // effect, so the sequence of rng values per round is a function of
  // the spec alone (DESIGN.md §13).
  std::mt19937_64& rng = fi_.rng();
  if (spec_.crash_rate > 0.0 && spec_.max_crashed > 0 && !crashed_.empty()) {
    if (util::chance(rng, spec_.crash_rate) && crashed_count_ < spec_.max_crashed &&
        crashed_count_ < crashed_.size()) {
      // Crash the k-th live process in id order.
      std::size_t k = static_cast<std::size_t>(
          util::uniform_below(rng, crashed_.size() - crashed_count_));
      for (std::size_t p = 0; p < crashed_.size(); ++p) {
        if (crashed_[p]) continue;
        if (k-- == 0) {
          crashed_[p] = 1;
          ++crashed_count_;
          ++crash_events_;
          break;
        }
      }
    }
  }
  if (spec_.restart_rate > 0.0 && spec_.max_crashed > 0 && !crashed_.empty()) {
    if (util::chance(rng, spec_.restart_rate) && crashed_count_ > 0) {
      // Restart the k-th crashed process in id order.
      std::size_t k = static_cast<std::size_t>(util::uniform_below(rng, crashed_count_));
      for (std::size_t p = 0; p < crashed_.size(); ++p) {
        if (!crashed_[p]) continue;
        if (k-- == 0) {
          crashed_[p] = 0;
          --crashed_count_;
          ++restart_events_;
          break;
        }
      }
    }
  }
  bool changed = false;
  if (spec_.corruption_rate > 0.0 && util::chance(rng, spec_.corruption_rate)) {
    StateVec before = s;
    fi_.corrupt(*space_, s, spec_.corruption_vars);
    ++corruption_events_;
    changed = s != before;
  }
  return changed;
}

}  // namespace cref::sim
