#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cref::sim {

/// Streaming mean / variance (Welford) plus exact percentiles over the
/// retained samples. Sized for simulation campaigns of up to millions of
/// runs (samples are kept; each is one double).
class Stats {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const { return count() ? mean_ : 0.0; }
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile (0 <= p <= 100) by sorting a copy of the samples.
  double percentile(double p) const;

 private:
  double mean_ = 0.0;
  double m2_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Named collection of Stats, keyed in insertion order — e.g. the
/// per-phase timing breakdown of the refinement engine (scc-build /
/// closure-build / edge-scan) accumulated across bench repetitions.
class StatsSet {
 public:
  /// Adds a sample to the named series, creating it on first use.
  void add(const std::string& name, double x);

  /// The named series, or nullptr if no sample was ever added to it.
  const Stats* find(const std::string& name) const;

  const std::vector<std::pair<std::string, Stats>>& entries() const { return entries_; }

  /// One line per series, insertion order:
  ///   "  <name>: mean=<m> min=<lo> max=<hi> total=<sum> (n=<count>)".
  std::string format(int precision = 3) const;

 private:
  std::vector<std::pair<std::string, Stats>> entries_;
};

}  // namespace cref::sim
