#pragma once

#include <cstddef>
#include <vector>

namespace cref::sim {

/// Streaming mean / variance (Welford) plus exact percentiles over the
/// retained samples. Sized for simulation campaigns of up to millions of
/// runs (samples are kept; each is one double).
class Stats {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const { return count() ? mean_ : 0.0; }
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile (0 <= p <= 100) by sorting a copy of the samples.
  double percentile(double p) const;

 private:
  double mean_ = 0.0;
  double m2_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace cref::sim
