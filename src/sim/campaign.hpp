#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/environment.hpp"
#include "sim/runner.hpp"
#include "util/parallel.hpp"

namespace cref::sim {

/// Daemon axis of a campaign sweep. Greedy-adversary cells score
/// successor states with the SYSTEM's CampaignSystem::adversary_score
/// (the interesting scores — abstract token counts — are per-protocol).
struct DaemonSpec {
  enum class Kind { kRandom, kRoundRobin, kGreedyAdversary };
  Kind kind = Kind::kRandom;

  const char* name() const {
    switch (kind) {
      case Kind::kRandom: return "random";
      case Kind::kRoundRobin: return "round-robin";
      case Kind::kGreedyAdversary: return "adversary";
    }
    return "?";
  }

  static DaemonSpec random() { return {Kind::kRandom}; }
  static DaemonSpec round_robin() { return {Kind::kRoundRobin}; }
  static DaemonSpec greedy_adversary() { return {Kind::kGreedyAdversary}; }
};

/// System axis of a campaign sweep. `system` is non-owning and must
/// outlive the run; its guards/effects are called concurrently from the
/// worker pool, so they must be pure (every protocol in this repo is —
/// the same contract TransitionGraph::build already relies on).
struct CampaignSystem {
  std::string name;
  const System* system = nullptr;
  StatePredicate legitimate;
  /// Successor score for greedy-adversary cells (required iff the sweep
  /// has a kGreedyAdversary daemon). Called concurrently; must be pure.
  std::function<double(const StateVec&)> adversary_score;
  /// Start state before the environment's perturbation — typically a
  /// canonical legitimate state, so burst environments measure
  /// re-convergence. Empty = all-zeros (scramble environments overwrite
  /// it anyway).
  StateVec base_state;
};

/// Declarative sweep specification: the full cross product
/// {systems} x {environments} x {daemons} x {runs_per_cell seeds}.
struct CampaignSpec {
  std::vector<CampaignSystem> systems;
  std::vector<EnvironmentSpec> environments;
  std::vector<DaemonSpec> daemons;
  std::size_t runs_per_cell = 100;
  std::uint64_t base_seed = 1;
  std::size_t max_steps = 100000;  // per-run round cap (RunOptions::max_steps)

  std::size_t cells() const {
    return systems.size() * environments.size() * daemons.size();
  }
  std::size_t total_runs() const { return cells() * runs_per_cell; }
};

/// log2-bucketed step-count histogram: bucket b counts converged runs
/// with floor(log2(steps + 1)) == b, so bucket 0 is 0 steps, bucket 1
/// is 1..2, bucket 2 is 3..6, ... Buckets make quantiles deterministic
/// and mergeable without retaining per-run samples (a million-run sweep
/// keeps ~100 words per cell instead of a million doubles).
inline constexpr std::size_t kCampaignHistogramBuckets = 40;

/// Per-cell streaming aggregate. INTEGER COUNTERS ONLY: merging is a
/// component-wise sum (plus min/max), which is associative and
/// commutative, so the merged aggregate is byte-identical no matter how
/// runs were sharded across workers — the campaign determinism
/// contract (cf. TransitionGraph::build's bit-identity).
struct CampaignAggregate {
  std::uint64_t runs = 0;
  std::uint64_t converged = 0;
  std::uint64_t deadlocked = 0;  // protocol deadlock, environment can't recover
  std::uint64_t blocked = 0;     // ... of which crash-induced
  std::uint64_t capped = 0;      // divergence: round cap hit, not legitimate
  std::uint64_t total_steps = 0;   // over converged runs
  std::uint64_t total_rounds = 0;  // over all runs
  std::uint64_t min_steps = UINT64_MAX;  // over converged runs
  std::uint64_t max_steps = 0;           // over converged runs
  std::uint64_t faults = 0;    // corruption events, all runs
  std::uint64_t crashes = 0;   // crash events, all runs
  std::uint64_t restarts = 0;  // restart events, all runs
  std::array<std::uint64_t, kCampaignHistogramBuckets> histogram{};

  void add(const RunResult& r);
  void merge(const CampaignAggregate& o);

  double convergence_rate() const {
    return runs ? static_cast<double>(converged) / static_cast<double>(runs) : 0.0;
  }
  double mean_steps() const {
    return converged ? static_cast<double>(total_steps) / static_cast<double>(converged)
                     : 0.0;
  }
  /// Approximate quantile (0 <= q <= 1) of the converged-run step
  /// counts: the upper edge of the histogram bucket where the
  /// cumulative count crosses q. Deterministic; within a factor of 2.
  std::uint64_t quantile_steps(double q) const;

  bool operator==(const CampaignAggregate&) const = default;
};

/// One cell of the sweep: indices into the spec's axes plus the
/// aggregate over its runs_per_cell runs.
struct CampaignCell {
  std::size_t system = 0;
  std::size_t environment = 0;
  std::size_t daemon = 0;
  CampaignAggregate agg;

  bool operator==(const CampaignCell&) const = default;
};

/// Result of a sweep: one cell per (system, environment, daemon) in
/// system-major, then environment, then daemon order. Equality is
/// byte-equality of every aggregate — the unit of the serial-vs-
/// parallel differential tests and the fuzz oracle.
struct CampaignResult {
  std::vector<CampaignCell> cells;

  std::uint64_t total_runs() const;
  bool operator==(const CampaignResult&) const = default;
};

/// Seed of run `run` of cell (system, environment, daemon): an
/// splitmix64-style mix of the base seed and the cell coordinates, so
/// every run's RNG streams are a pure function of the spec — not of
/// which worker executed it, in what order, at what thread count.
std::uint64_t derive_run_seed(std::uint64_t base, std::size_t system,
                              std::size_t environment, std::size_t daemon,
                              std::size_t run);

/// Thread-pooled campaign driver. `run` shards the flattened
/// (cell, run) index space across EngineOptions-many workers via the
/// same dynamic chunking as the refinement engine's scans; each worker
/// streams RunResults into its own private per-cell aggregates (no
/// locks, no sharing), merged per cell in worker order at the end.
/// Results are byte-identical at any thread count and chunk size.
class CampaignDriver {
 public:
  explicit CampaignDriver(EngineOptions opts = {}) : opts_(opts) {}

  /// Runs the sweep. Throws std::invalid_argument on malformed specs
  /// (no axis may be empty; every system needs a pointer and a
  /// legitimacy predicate; greedy-adversary sweeps need scores).
  CampaignResult run(const CampaignSpec& spec) const;

 private:
  EngineOptions opts_;
};

/// Renders the per-cell table (one row per cell, spec order):
/// system | environment | daemon | runs | conv% | steps mean/p50/p99 |
/// deadlock | blocked | capped | faults | crashes | restarts.
std::string format_campaign(const CampaignSpec& spec, const CampaignResult& result);

}  // namespace cref::sim
