#pragma once

#include <random>

#include "core/space.hpp"

namespace cref::sim {

/// Transient-fault injection: arbitrary corruption of process state, the
/// fault class the paper's stabilization results are about.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Corrupts `count` uniformly chosen variables of `s` to uniformly
  /// chosen values of their domains (values may coincide with the old
  /// ones — a transient fault need not be observable).
  void corrupt(const Space& space, StateVec& s, std::size_t count);

  /// Replaces the whole state by a uniformly random state of the space.
  void scramble(const Space& space, StateVec& s);

  std::mt19937_64& rng() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

}  // namespace cref::sim
