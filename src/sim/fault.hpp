#pragma once

#include <random>

#include "core/space.hpp"

namespace cref::sim {

/// Transient-fault injection: arbitrary corruption of process state, the
/// fault class the paper's stabilization results are about.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Corrupts exactly `count` DISTINCT uniformly chosen variables of `s`
  /// (clamped to the variable count) to uniformly chosen values of their
  /// domains. A new value may coincide with the old one — a transient
  /// fault need not be observable — but no draw is wasted re-corrupting
  /// the same variable, so "k faults" means k variables touched.
  /// The draw sequence is identical on every platform for a given seed
  /// (mt19937_64 + rejection sampling; no std:: distributions, whose
  /// output is implementation-defined) — fault_test.cpp pins goldens.
  void corrupt(const Space& space, StateVec& s, std::size_t count);

  /// Replaces the whole state by a uniformly random state of the space.
  /// Platform-deterministic under the seed, like corrupt().
  void scramble(const Space& space, StateVec& s);

  std::mt19937_64& rng() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

}  // namespace cref::sim
