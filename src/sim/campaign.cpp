#include "sim/campaign.hpp"

#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace cref::sim {

void CampaignAggregate::add(const RunResult& r) {
  ++runs;
  total_rounds += r.rounds;
  faults += r.faults;
  crashes += r.crashes;
  restarts += r.restarts;
  if (r.converged) {
    ++converged;
    const std::uint64_t s = r.steps;
    total_steps += s;
    if (s < min_steps) min_steps = s;
    if (s > max_steps) max_steps = s;
    std::size_t bucket = 0;
    for (std::uint64_t v = s + 1; v > 1; v >>= 1) ++bucket;
    if (bucket >= kCampaignHistogramBuckets) bucket = kCampaignHistogramBuckets - 1;
    ++histogram[bucket];
  } else if (r.deadlocked) {
    ++deadlocked;
    if (r.blocked) ++blocked;
  } else {
    ++capped;
  }
}

void CampaignAggregate::merge(const CampaignAggregate& o) {
  runs += o.runs;
  converged += o.converged;
  deadlocked += o.deadlocked;
  blocked += o.blocked;
  capped += o.capped;
  total_steps += o.total_steps;
  total_rounds += o.total_rounds;
  if (o.min_steps < min_steps) min_steps = o.min_steps;
  if (o.max_steps > max_steps) max_steps = o.max_steps;
  faults += o.faults;
  crashes += o.crashes;
  restarts += o.restarts;
  for (std::size_t b = 0; b < kCampaignHistogramBuckets; ++b) histogram[b] += o.histogram[b];
}

std::uint64_t CampaignAggregate::quantile_steps(double q) const {
  if (converged == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(converged)));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kCampaignHistogramBuckets; ++b) {
    cum += histogram[b];
    if (cum >= target && histogram[b] > 0) {
      // Upper edge of bucket b: steps s with floor(log2(s+1)) == b are
      // s in [2^b - 1, 2^(b+1) - 2].
      return (std::uint64_t{2} << b) - 2;
    }
  }
  return max_steps;
}

std::uint64_t CampaignResult::total_runs() const {
  std::uint64_t n = 0;
  for (const CampaignCell& c : cells) n += c.agg.runs;
  return n;
}

std::uint64_t derive_run_seed(std::uint64_t base, std::size_t system,
                              std::size_t environment, std::size_t daemon,
                              std::size_t run) {
  // splitmix64 finalizer over a linear combination of the coordinates;
  // the odd multipliers keep distinct cells off each other's streams.
  std::uint64_t z = base;
  z += 0x9E3779B97F4A7C15ull * (1 + static_cast<std::uint64_t>(system));
  z += 0xBF58476D1CE4E5B9ull * (1 + static_cast<std::uint64_t>(environment));
  z += 0x94D049BB133111EBull * (1 + static_cast<std::uint64_t>(daemon));
  z += 0xD6E8FEB86659FD93ull * (1 + static_cast<std::uint64_t>(run));
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

namespace {

void validate(const CampaignSpec& spec) {
  if (spec.systems.empty() || spec.environments.empty() || spec.daemons.empty())
    throw std::invalid_argument("CampaignSpec: every axis needs at least one entry");
  if (spec.runs_per_cell == 0)
    throw std::invalid_argument("CampaignSpec: runs_per_cell must be positive");
  bool greedy = false;
  for (const DaemonSpec& d : spec.daemons)
    greedy = greedy || d.kind == DaemonSpec::Kind::kGreedyAdversary;
  for (const CampaignSystem& cs : spec.systems) {
    if (!cs.system)
      throw std::invalid_argument("CampaignSpec: system '" + cs.name + "' has no System");
    if (!cs.legitimate)
      throw std::invalid_argument("CampaignSpec: system '" + cs.name +
                                  "' has no legitimacy predicate");
    if (greedy && !cs.adversary_score)
      throw std::invalid_argument("CampaignSpec: system '" + cs.name +
                                  "' needs an adversary_score for the greedy daemon");
  }
}

/// Executes one (cell, run) work item. Everything seeded from the
/// derived run seed; no state shared with other runs.
RunResult one_run(const CampaignSpec& spec, std::size_t si, std::size_t ei,
                  std::size_t di, std::size_t run) {
  const CampaignSystem& cs = spec.systems[si];
  const std::uint64_t seed = derive_run_seed(spec.base_seed, si, ei, di, run);
  Environment env(spec.environments[ei], *cs.system, seed);
  // The daemon draws from its own stream, decoupled from the fault
  // stream (one more finalizer round keeps them independent).
  const std::uint64_t daemon_seed = derive_run_seed(seed, si, ei, di, run + 1);
  StateVec start = cs.base_state;

  RunOptions ro;
  ro.max_steps = spec.max_steps;
  switch (spec.daemons[di].kind) {
    case DaemonSpec::Kind::kRandom: {
      RandomDaemon d(daemon_seed);
      return run_until(*cs.system, std::move(start), d, cs.legitimate, env, ro);
    }
    case DaemonSpec::Kind::kRoundRobin: {
      RoundRobinDaemon d;
      return run_until(*cs.system, std::move(start), d, cs.legitimate, env, ro);
    }
    case DaemonSpec::Kind::kGreedyAdversary: {
      GreedyAdversaryDaemon d(cs.adversary_score);
      return run_until(*cs.system, std::move(start), d, cs.legitimate, env, ro);
    }
  }
  return {};
}

}  // namespace

CampaignResult CampaignDriver::run(const CampaignSpec& spec) const {
  validate(spec);
  const std::size_t n_env = spec.environments.size();
  const std::size_t n_dae = spec.daemons.size();
  const std::size_t cells = spec.cells();
  const std::size_t total = spec.total_runs();

  // Per-worker private aggregates: no locks, no false sharing on the
  // hot path (each worker touches only its own vector). Worker count
  // must be resolved up front so the merge below can iterate them in a
  // fixed order.
  const std::size_t workers = opts_.resolved_threads(total);
  EngineOptions pinned = opts_;
  pinned.num_threads = workers;
  std::vector<std::vector<CampaignAggregate>> per_worker(
      workers, std::vector<CampaignAggregate>(cells));

  parallel_chunks(total, pinned, [&](std::size_t tid, std::size_t begin, std::size_t end) {
    std::vector<CampaignAggregate>& mine = per_worker[tid];
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t cell = i / spec.runs_per_cell;
      const std::size_t run = i % spec.runs_per_cell;
      const std::size_t si = cell / (n_env * n_dae);
      const std::size_t ei = (cell / n_dae) % n_env;
      const std::size_t di = cell % n_dae;
      mine[cell].add(one_run(spec, si, ei, di, run));
    }
  });

  // Deterministic merge: per cell, fold workers in index order. Every
  // component is a sum or a min/max over disjoint run sets, so the
  // result is independent of which worker ran which chunk.
  CampaignResult result;
  result.cells.resize(cells);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    CampaignCell& out = result.cells[cell];
    out.system = cell / (n_env * n_dae);
    out.environment = (cell / n_dae) % n_env;
    out.daemon = cell % n_dae;
    for (std::size_t w = 0; w < workers; ++w) out.agg.merge(per_worker[w][cell]);
  }
  return result;
}

std::string format_campaign(const CampaignSpec& spec, const CampaignResult& result) {
  util::Table t({"system", "environment", "daemon", "runs", "conv%", "mean", "p50", "p99",
                 "dead", "blocked", "capped", "faults", "crashes", "restarts"});
  for (const CampaignCell& c : result.cells) {
    const CampaignAggregate& a = c.agg;
    t.add_row({spec.systems[c.system].name, spec.environments[c.environment].name,
               spec.daemons[c.daemon].name(), std::to_string(a.runs),
               util::format_double(100.0 * a.convergence_rate(), 1),
               util::format_double(a.mean_steps(), 1), std::to_string(a.quantile_steps(0.5)),
               std::to_string(a.quantile_steps(0.99)), std::to_string(a.deadlocked),
               std::to_string(a.blocked), std::to_string(a.capped), std::to_string(a.faults),
               std::to_string(a.crashes), std::to_string(a.restarts)});
  }
  return t.to_string();
}

}  // namespace cref::sim
