#include "sim/runner.hpp"

namespace cref::sim {

std::vector<std::size_t> enabled_changing_actions(const System& sys, const StateVec& s) {
  std::vector<std::size_t> out;
  StateVec effect;
  enabled_changing_actions_into(sys, s, out, effect);
  return out;
}

void enabled_changing_actions_into(const System& sys, const StateVec& s,
                                   std::vector<std::size_t>& out, StateVec& effect) {
  out.clear();
  for (std::size_t i = 0; i < sys.actions().size(); ++i) {
    const Action& a = sys.actions()[i];
    if (!a.guard(s)) continue;
    effect = s;
    a.effect(effect);
    if (effect != s) out.push_back(i);
  }
}

void enabled_changing_actions_into(const System& sys, const StateVec& s,
                                   const Environment& env, std::vector<std::size_t>& out,
                                   StateVec& effect, bool* masked_any) {
  out.clear();
  if (masked_any) *masked_any = false;
  for (std::size_t i = 0; i < sys.actions().size(); ++i) {
    const Action& a = sys.actions()[i];
    if (!a.guard(s)) continue;
    effect = s;
    a.effect(effect);
    if (effect == s) continue;
    if (env.masks(a)) {
      if (masked_any) *masked_any = true;
      continue;
    }
    out.push_back(i);
  }
}

std::vector<std::size_t> enabled_changing_actions(const System& sys, const StateVec& s,
                                                  const Environment& env) {
  std::vector<std::size_t> out;
  StateVec effect;
  enabled_changing_actions_into(sys, s, env, out, effect);
  return out;
}

RunResult run_until(const System& sys, StateVec start, Scheduler& sched,
                    const StatePredicate& legitimate, const RunOptions& opts) {
  RunResult res;
  StateVec state = std::move(start);
  if (opts.record_trace) res.trace.push_back(state);
  std::vector<std::size_t> enabled;
  StateVec effect;
  for (res.steps = 0; res.steps < opts.max_steps; ++res.steps) {
    res.rounds = res.steps;
    if (legitimate(state)) {
      res.converged = true;
      res.final_state = std::move(state);
      return res;
    }
    enabled_changing_actions_into(sys, state, enabled, effect);
    if (enabled.empty()) {
      res.deadlocked = true;
      res.final_state = std::move(state);
      return res;
    }
    std::size_t idx = sched.pick(sys, state, enabled);
    sys.actions()[idx].effect(state);
    if (opts.record_trace) res.trace.push_back(state);
  }
  res.rounds = res.steps;
  res.converged = legitimate(state);
  res.final_state = std::move(state);
  return res;
}

RunResult run_until(const System& sys, StateVec start, Scheduler& sched,
                    const StatePredicate& legitimate, Environment& env,
                    const RunOptions& opts) {
  RunResult res;
  StateVec state = std::move(start);
  env.perturb_start(state);
  if (opts.record_trace) res.trace.push_back(state);
  std::vector<std::size_t> enabled;
  StateVec effect;
  auto finish = [&](bool converged) {
    res.converged = converged;
    res.faults = env.corruption_events();
    res.crashes = env.crash_events();
    res.restarts = env.restart_events();
    res.final_state = std::move(state);
    return std::move(res);
  };
  for (res.rounds = 0; res.rounds < opts.max_steps; ++res.rounds) {
    if (legitimate(state)) return finish(true);
    if (env.pre_step_faults(state)) {
      if (opts.record_trace) res.trace.push_back(state);
      // A fault can CREATE legitimacy (satellite regression: a
      // corruption landing inside the legitimate set) — re-check before
      // the daemon gets to step out of it.
      if (legitimate(state)) return finish(true);
    }
    bool masked_any = false;
    enabled_changing_actions_into(sys, state, env, enabled, effect, &masked_any);
    if (enabled.empty()) {
      if (env.can_recover()) continue;  // faults may still unblock the run
      res.deadlocked = true;
      res.blocked = masked_any;
      return finish(false);
    }
    std::size_t idx = sched.pick(sys, state, enabled);
    sys.actions()[idx].effect(state);
    ++res.steps;
    if (opts.record_trace) res.trace.push_back(state);
  }
  return finish(legitimate(state));
}

bool step_synchronous(const System& sys, StateVec& state, const std::vector<int>& processes) {
  StateVec next = state;
  StateVec scratch;
  bool changed = false;
  for (int p : processes) {
    for (const Action& a : sys.actions()) {
      if (a.process != p || !a.guard(state)) continue;
      scratch = state;
      a.effect(scratch);
      if (scratch == state) continue;
      // Merge this process's writes (vars where scratch differs from the
      // pre-step state) into the accumulated next state.
      for (std::size_t v = 0; v < state.size(); ++v)
        if (scratch[v] != state[v]) next[v] = scratch[v];
      changed = true;
      break;  // one action per process per synchronous round
    }
  }
  if (changed) state = std::move(next);
  return changed;
}

}  // namespace cref::sim
