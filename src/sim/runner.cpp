#include "sim/runner.hpp"

namespace cref::sim {

std::vector<std::size_t> enabled_changing_actions(const System& sys, const StateVec& s) {
  std::vector<std::size_t> out;
  StateVec effect;
  enabled_changing_actions_into(sys, s, out, effect);
  return out;
}

void enabled_changing_actions_into(const System& sys, const StateVec& s,
                                   std::vector<std::size_t>& out, StateVec& effect) {
  out.clear();
  for (std::size_t i = 0; i < sys.actions().size(); ++i) {
    const Action& a = sys.actions()[i];
    if (!a.guard(s)) continue;
    effect = s;
    a.effect(effect);
    if (effect != s) out.push_back(i);
  }
}

RunResult run_until(const System& sys, StateVec start, Scheduler& sched,
                    const StatePredicate& legitimate, const RunOptions& opts) {
  RunResult res;
  StateVec state = std::move(start);
  if (opts.record_trace) res.trace.push_back(state);
  std::vector<std::size_t> enabled;
  StateVec effect;
  for (res.steps = 0; res.steps < opts.max_steps; ++res.steps) {
    if (legitimate(state)) {
      res.converged = true;
      res.final_state = std::move(state);
      return res;
    }
    enabled_changing_actions_into(sys, state, enabled, effect);
    if (enabled.empty()) {
      res.deadlocked = true;
      res.final_state = std::move(state);
      return res;
    }
    std::size_t idx = sched.pick(sys, state, enabled);
    sys.actions()[idx].effect(state);
    if (opts.record_trace) res.trace.push_back(state);
  }
  res.converged = legitimate(state);
  res.final_state = std::move(state);
  return res;
}

bool step_synchronous(const System& sys, StateVec& state, const std::vector<int>& processes) {
  StateVec next = state;
  StateVec scratch;
  bool changed = false;
  for (int p : processes) {
    for (const Action& a : sys.actions()) {
      if (a.process != p || !a.guard(state)) continue;
      scratch = state;
      a.effect(scratch);
      if (scratch == state) continue;
      // Merge this process's writes (vars where scratch differs from the
      // pre-step state) into the accumulated next state.
      for (std::size_t v = 0; v < state.size(); ++v)
        if (scratch[v] != state[v]) next[v] = scratch[v];
      changed = true;
      break;  // one action per process per synchronous round
    }
  }
  if (changed) state = std::move(next);
  return changed;
}

}  // namespace cref::sim
