#include "sim/fault.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace cref::sim {

void FaultInjector::corrupt(const Space& space, StateVec& s, std::size_t count) {
  const std::size_t n = space.var_count();
  if (count > n) count = n;
  // Partial Fisher-Yates: the first `count` entries of `pick` end up a
  // uniformly random sample of distinct variable indices.
  std::vector<std::size_t> pick(n);
  std::iota(pick.begin(), pick.end(), std::size_t{0});
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j = i + static_cast<std::size_t>(util::uniform_below(rng_, n - i));
    std::swap(pick[i], pick[j]);
    const std::size_t v = pick[i];
    s[v] = static_cast<Value>(
        util::uniform_below(rng_, static_cast<std::uint64_t>(space.var(v).cardinality)));
  }
}

void FaultInjector::scramble(const Space& space, StateVec& s) {
  s.resize(space.var_count());
  for (std::size_t v = 0; v < space.var_count(); ++v)
    s[v] = static_cast<Value>(
        util::uniform_below(rng_, static_cast<std::uint64_t>(space.var(v).cardinality)));
}

}  // namespace cref::sim
