#include "sim/fault.hpp"

namespace cref::sim {

void FaultInjector::corrupt(const Space& space, StateVec& s, std::size_t count) {
  std::uniform_int_distribution<std::size_t> var(0, space.var_count() - 1);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t v = var(rng_);
    std::uniform_int_distribution<int> val(0, space.var(v).cardinality - 1);
    s[v] = static_cast<Value>(val(rng_));
  }
}

void FaultInjector::scramble(const Space& space, StateVec& s) {
  s.resize(space.var_count());
  for (std::size_t v = 0; v < space.var_count(); ++v) {
    std::uniform_int_distribution<int> val(0, space.var(v).cardinality - 1);
    s[v] = static_cast<Value>(val(rng_));
  }
}

}  // namespace cref::sim
