#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/fault.hpp"

namespace cref::sim {

/// Declarative description of a fault environment in the sense of
/// Dolev–Herman's "unsupportive environments": what the world does to a
/// run besides scheduling it. Three orthogonal mechanisms compose:
///
///   * start-state perturbation — a one-shot scramble and/or burst of
///     `burst` distinct-variable corruptions BEFORE step 0 (the fault
///     class the paper's stabilization results are about, and the only
///     one the simulator modeled before the environment layer);
///   * rate-based mid-run corruption — before each daemon step, with
///     probability `corruption_rate`, `corruption_vars` distinct
///     variables are rewritten to uniform domain values (the ongoing
///     transient faults of Dolev–Herman's rate regime);
///   * crash/restart — before each daemon step, with probability
///     `crash_rate`, one uniformly chosen live process crashes (its
///     actions are masked from the enabled set until it restarts; its
///     state freezes in place), and with probability `restart_rate` one
///     uniformly chosen crashed process restarts. At most `max_crashed`
///     processes are down at once (a crash draw with the cap reached is
///     consumed but has no effect, keeping the draw sequence aligned).
///
/// A spec is pure data so campaign sweeps can enumerate cells
/// declaratively and instantiate a fresh deterministic Environment per
/// run; see DESIGN.md §13 for the fault/step ordering and determinism
/// contract.
struct EnvironmentSpec {
  std::string name = "pristine";

  // One-shot start perturbation (degenerate environments).
  bool scramble_start = false;  // replace the start by a uniform state
  std::size_t burst = 0;        // then corrupt this many distinct vars

  // Rate-based mid-run corruption (per-round Bernoulli).
  double corruption_rate = 0.0;
  std::size_t corruption_vars = 1;

  // Crash/restart (per-round Bernoulli each).
  double crash_rate = 0.0;
  double restart_rate = 0.0;
  std::size_t max_crashed = 0;  // 0 = crashes never happen

  /// True if any mid-run mechanism is active (the environment-aware
  /// runner can take the plain fast path otherwise).
  bool has_midrun_faults() const {
    return corruption_rate > 0.0 || (crash_rate > 0.0 && max_crashed > 0);
  }

  // Named constructors for the standard matrix axes.
  static EnvironmentSpec pristine();
  static EnvironmentSpec scramble();
  static EnvironmentSpec burst_of(std::size_t k);
  static EnvironmentSpec corruption(double rate, std::size_t vars = 1);
  static EnvironmentSpec crash_restart(double crash, double restart,
                                       std::size_t max_crashed = 1);
};

/// One run's instantiation of an EnvironmentSpec against a concrete
/// system: owns the fault RNG (a FaultInjector — every draw goes through
/// the same platform-deterministic uniform_below/chance discipline as
/// FaultInjector::corrupt, so a (spec, seed) pair replays bit-identically
/// on every platform) and the crashed-process mask.
///
/// Processes are the action-owner ids 0..P-1 of the system (P = one past
/// the largest Action::process). Wrapper/global actions with process -1
/// are never masked — there is no single process whose crash could stop
/// them.
class Environment {
 public:
  Environment(EnvironmentSpec spec, const System& sys, std::uint64_t seed);

  const EnvironmentSpec& spec() const { return spec_; }
  std::size_t process_count() const { return crashed_.size(); }

  /// Applies the one-shot start perturbation (scramble, then burst) to
  /// `s`. Call exactly once, before the first legitimacy check.
  void perturb_start(StateVec& s);

  /// Draws this round's fault events against `s`, in the FIXED order
  /// crash -> restart -> corruption (the determinism contract: every
  /// round consumes the same conditional draw sequence, so two
  /// environments with equal (spec, seed) stay aligned forever).
  /// Returns true iff the state vector changed — the caller must then
  /// re-check legitimacy, because a fault can CREATE legitimacy just as
  /// well as destroy it.
  bool pre_step_faults(StateVec& s);

  /// True if the owning process of `a` is currently crashed (actions
  /// with process -1 are never masked).
  bool masks(const Action& a) const {
    return a.process >= 0 && static_cast<std::size_t>(a.process) < crashed_.size() &&
           crashed_[static_cast<std::size_t>(a.process)];
  }

  bool crashed(int process) const {
    return process >= 0 && static_cast<std::size_t>(process) < crashed_.size() &&
           crashed_[static_cast<std::size_t>(process)];
  }
  std::size_t crashed_count() const { return crashed_count_; }

  /// True if a run blocked in the current configuration (no executable
  /// action) can still be unblocked by future environment events:
  /// corruption can always perturb the state, and a crashed process can
  /// restart. Without either, a blocked run is permanently stuck.
  bool can_recover() const {
    return spec_.corruption_rate > 0.0 || (crashed_count_ > 0 && spec_.restart_rate > 0.0);
  }

  // Event counters (whole run).
  std::uint64_t corruption_events() const { return corruption_events_; }
  std::uint64_t crash_events() const { return crash_events_; }
  std::uint64_t restart_events() const { return restart_events_; }

 private:
  EnvironmentSpec spec_;
  const Space* space_;
  FaultInjector fi_;
  std::vector<char> crashed_;
  std::size_t crashed_count_ = 0;
  std::uint64_t corruption_events_ = 0;
  std::uint64_t crash_events_ = 0;
  std::uint64_t restart_events_ = 0;
};

}  // namespace cref::sim
