#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cref::sim {

void Stats::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void StatsSet::add(const std::string& name, double x) {
  for (auto& [n, s] : entries_)
    if (n == name) {
      s.add(x);
      return;
    }
  entries_.emplace_back(name, Stats{});
  entries_.back().second.add(x);
}

const Stats* StatsSet::find(const std::string& name) const {
  for (const auto& [n, s] : entries_)
    if (n == name) return &s;
  return nullptr;
}

std::string StatsSet::format(int precision) const {
  std::string out;
  char line[256];
  for (const auto& [name, s] : entries_) {
    std::snprintf(line, sizeof(line), "  %s: mean=%.*f min=%.*f max=%.*f total=%.*f (n=%zu)\n",
                  name.c_str(), precision, s.mean(), precision, s.min(), precision, s.max(),
                  precision, s.mean() * static_cast<double>(s.count()), s.count());
    out += line;
  }
  return out;
}

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace cref::sim
