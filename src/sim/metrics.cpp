#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace cref::sim {

void Stats::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace cref::sim
