#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/system.hpp"
#include "sim/environment.hpp"
#include "sim/scheduler.hpp"

namespace cref::sim {

/// Outcome of one simulated execution.
///
/// Under an Environment, `steps` counts only executed daemon actions
/// (fault injections are not steps, and a round in which every enabled
/// action is crash-masked executes nothing); `rounds` counts loop
/// iterations — fault-draw opportunities — and is what RunOptions::
/// max_steps caps, so a fully crash-blocked run still terminates.
/// Without an environment rounds == steps.
struct RunResult {
  bool converged = false;        // legitimacy predicate became true
  std::size_t steps = 0;         // daemon actions executed
  std::size_t rounds = 0;        // loop iterations (== steps without env)
  bool deadlocked = false;       // no state-changing action was enabled
                                 // and the environment cannot recover it
  bool blocked = false;          // the deadlock was crash-induced: some
                                 // action was enabled but masked
  StateVec final_state;          // state at exit (populated on every path,
                                 // whether or not a trace was recorded)
  std::vector<StateVec> trace;   // recorded states (only if requested)
  std::uint64_t faults = 0;      // mid-run corruption events injected
  std::uint64_t crashes = 0;     // crash events
  std::uint64_t restarts = 0;    // restart events
};

/// Options for a simulated execution.
struct RunOptions {
  std::size_t max_steps = 1'000'000;
  bool record_trace = false;
};

/// Indices of actions of `sys` enabled in `s` whose execution changes the
/// state (no-op executions are not steps).
std::vector<std::size_t> enabled_changing_actions(const System& sys, const StateVec& s);

/// Allocation-free variant: clears and refills `out`, using `effect` as
/// the action-effect workspace. run_until holds both buffers across its
/// whole execution, so long simulations allocate nothing per step.
void enabled_changing_actions_into(const System& sys, const StateVec& s,
                                   std::vector<std::size_t>& out, StateVec& effect);

/// Environment-aware variant: actions owned by a crashed process are
/// masked from the result. `*masked_any` (optional) reports whether any
/// enabled, state-changing action was dropped solely because its owner
/// is crashed — the crash-blocked diagnostic of the env run path.
void enabled_changing_actions_into(const System& sys, const StateVec& s,
                                   const Environment& env, std::vector<std::size_t>& out,
                                   StateVec& effect, bool* masked_any = nullptr);

/// Crash-masked enabled set (convenience over the _into variant).
std::vector<std::size_t> enabled_changing_actions(const System& sys, const StateVec& s,
                                                  const Environment& env);

/// Runs `sys` from `start` under central-daemon semantics driven by
/// `sched`, until `legitimate` holds, a deadlock is reached, or
/// `opts.max_steps` steps have been taken. The legitimacy predicate is
/// checked BEFORE the first step (a legitimate start converges in 0).
RunResult run_until(const System& sys, StateVec start, Scheduler& sched,
                    const StatePredicate& legitimate, const RunOptions& opts = {});

/// Environment-aware run: `env` first perturbs the start state
/// (scramble/burst), then before every daemon step draws this round's
/// fault events (crash -> restart -> corruption). Legitimacy is checked
/// at the top of each round AND re-checked immediately after any
/// state-changing fault — a corruption can land INSIDE the legitimate
/// set, and without the re-check the daemon would get to execute an
/// action out of it first. Crash-masked rounds (every enabled action
/// owned by a crashed process) execute nothing and count no step; a
/// blocked or deadlocked configuration the environment can still
/// recover (restart possible, or corruption active) keeps running,
/// otherwise the run exits with deadlocked (and blocked when
/// crash-induced). `opts.max_steps` caps rounds, so runs terminate even
/// when fully blocked. With `opts.record_trace` every distinct state —
/// whether reached by a daemon step or by a corruption — is appended,
/// so consecutive trace entries always differ.
RunResult run_until(const System& sys, StateVec start, Scheduler& sched,
                    const StatePredicate& legitimate, Environment& env,
                    const RunOptions& opts = {});

/// One SYNCHRONOUS (or distributed-daemon) step: every process index in
/// `processes` whose action set contains an enabled, state-changing
/// action executes it against the OLD state; writes are merged in
/// ascending process order. Only meaningful for systems whose actions
/// write the owning process's variables (all concrete protocols here).
/// Returns false if nothing changed.
bool step_synchronous(const System& sys, StateVec& state, const std::vector<int>& processes);

}  // namespace cref::sim
