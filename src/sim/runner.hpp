#pragma once

#include <optional>
#include <vector>

#include "core/system.hpp"
#include "sim/scheduler.hpp"

namespace cref::sim {

/// Outcome of one simulated execution.
struct RunResult {
  bool converged = false;        // legitimacy predicate became true
  std::size_t steps = 0;         // steps taken until convergence (or cap)
  bool deadlocked = false;       // no state-changing action was enabled
  StateVec final_state;          // state at exit (populated on every path,
                                 // whether or not a trace was recorded)
  std::vector<StateVec> trace;   // recorded states (only if requested)
};

/// Options for a simulated execution.
struct RunOptions {
  std::size_t max_steps = 1'000'000;
  bool record_trace = false;
};

/// Indices of actions of `sys` enabled in `s` whose execution changes the
/// state (no-op executions are not steps).
std::vector<std::size_t> enabled_changing_actions(const System& sys, const StateVec& s);

/// Allocation-free variant: clears and refills `out`, using `effect` as
/// the action-effect workspace. run_until holds both buffers across its
/// whole execution, so long simulations allocate nothing per step.
void enabled_changing_actions_into(const System& sys, const StateVec& s,
                                   std::vector<std::size_t>& out, StateVec& effect);

/// Runs `sys` from `start` under central-daemon semantics driven by
/// `sched`, until `legitimate` holds, a deadlock is reached, or
/// `opts.max_steps` steps have been taken. The legitimacy predicate is
/// checked BEFORE the first step (a legitimate start converges in 0).
RunResult run_until(const System& sys, StateVec start, Scheduler& sched,
                    const StatePredicate& legitimate, const RunOptions& opts = {});

/// One SYNCHRONOUS (or distributed-daemon) step: every process index in
/// `processes` whose action set contains an enabled, state-changing
/// action executes it against the OLD state; writes are merged in
/// ascending process order. Only meaningful for systems whose actions
/// write the owning process's variables (all concrete protocols here).
/// Returns false if nothing changed.
bool step_synchronous(const System& sys, StateVec& state, const std::vector<int>& processes);

}  // namespace cref::sim
