#pragma once

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace cref::sim {

/// A central daemon: at each step it picks ONE of the enabled,
/// state-changing actions (indices into sys.actions()). Enabled actions
/// whose execution would not change the state are never offered — a
/// computation is a sequence of states, so a no-op execution is not a
/// step (see DESIGN.md, semantic conventions).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Picks one element of `enabled` (indices into sys.actions()); called
  /// only with a non-empty list.
  virtual std::size_t pick(const System& sys, const StateVec& state,
                           const std::vector<std::size_t>& enabled) = 0;

  virtual std::string name() const = 0;
};

/// Picks uniformly at random — the usual probabilistic central daemon.
/// Platform-deterministic under the seed (mt19937_64 + rejection
/// sampling, the same discipline as FaultInjector), so campaign
/// aggregates replay bit-identically across platforms.
class RandomDaemon final : public Scheduler {
 public:
  explicit RandomDaemon(std::uint64_t seed) : rng_(seed) {}
  std::size_t pick(const System&, const StateVec&,
                   const std::vector<std::size_t>& enabled) override;
  std::string name() const override { return "random"; }

 private:
  std::mt19937_64 rng_;
};

/// Cycles deterministically through the action list, granting the next
/// enabled action at or after the cursor — a weakly fair daemon.
class RoundRobinDaemon final : public Scheduler {
 public:
  std::size_t pick(const System&, const StateVec&,
                   const std::vector<std::size_t>& enabled) override;
  std::string name() const override { return "round-robin"; }

 private:
  std::size_t cursor_ = 0;
};

/// Greedy adversary: picks the enabled action whose successor state
/// maximizes `score` (ties broken by lowest action index). With a score
/// like "number of tokens in the abstract image" it delays convergence
/// as long as a one-step lookahead can.
class GreedyAdversaryDaemon final : public Scheduler {
 public:
  explicit GreedyAdversaryDaemon(std::function<double(const StateVec&)> score)
      : score_(std::move(score)) {}
  std::size_t pick(const System& sys, const StateVec& state,
                   const std::vector<std::size_t>& enabled) override;
  std::string name() const override { return "greedy-adversary"; }

 private:
  std::function<double(const StateVec&)> score_;
};

}  // namespace cref::sim
