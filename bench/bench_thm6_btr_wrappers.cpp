// E4 — Theorem 6: (BTR [] W1 [] W2) stabilizing to BTR, plus the wrapper
// ablation, across ring sizes and BOTH composition semantics. The
// measured result: plain box-union FAILS (an unfair daemon lets opposing
// tokens cross without ever granting W2), priority composition HOLDS.

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "ring/btr.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

int main() {
  header("E4", "Theorem 6: stabilizing the abstract bidirectional ring");

  util::Table t({"n", "|Sigma|", "BTR alone", "+W1 only", "+W2 only",
                 "[]W1[]W2 (union)", "<|(W1[]W2) (priority)"});
  for (int n = 2; n <= 7; ++n) {
    BtrLayout l(n);
    System btr = make_btr(l);
    System w1 = make_w1(l);
    System w2 = make_w2(l);
    auto stab = [&](const System& sys) {
      return verdict(RefinementChecker(sys, btr).stabilizing_to());
    };
    t.add_row({std::to_string(n), std::to_string(l.space()->size()), stab(btr),
               stab(box_priority(btr, w1)), stab(box_priority(btr, w2)),
               stab(box(btr, w1, w2)), stab(box_priority(btr, box(w1, w2)))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Exhibit the crossing cycle behind the union failure at n = 3.
  BtrLayout l(3);
  System btr = make_btr(l);
  auto r = RefinementChecker(box(btr, make_w1(l), make_w2(l)), btr).stabilizing_to();
  if (!r.holds) {
    std::printf("union-failure witness cycle (tokens set per state):\n%s",
                r.witness.format(*l.space()).c_str());
  }
  std::printf(
      "\nfinding: Theorem 6 requires the superposition reading (wrapper\n"
      "preempts the system). As a plain automata union, W2's cancellation\n"
      "is merely optional and opposing tokens cross forever. EXPERIMENTS.md E4.\n");
  return 0;
}
