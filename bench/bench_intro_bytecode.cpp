// E2 — the introduction's Java example: the source program
// "int x=0; while(x==x){x=0;}" tolerates corruption of x (it is
// stabilizing to "x is always 0"), but the bytecode a compiler emits is
// not: corrupting x between the two iloads drives execution to `return`.
// The experiment rebuilds both as automata over the mini stack machine
// and model-checks every claim, printing the fatal trace.

#include <cstdio>

#include "common.hpp"
#include "jvmsim/automaton.hpp"
#include "refinement/checker.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::jvm;

int main() {
  header("E2", "Intro: compilation does not preserve tolerance (bytecode VM)");

  Program program = Program::paper_example();
  std::printf("compiled program (paper's listing):\n%s\n",
              program.disassemble().c_str());

  VmAutomaton vm = make_vm_automaton(program, /*num_locals=*/2, /*max_stack=*/2,
                                     /*value_card=*/2, /*observed_local=*/1);
  SpacePtr xs = make_x_space(2);
  System source = make_source_loop(xs);
  System spec = make_always_zero_spec(xs);

  RefinementChecker src_spec(source, spec);
  RefinementChecker vm_spec(vm.system, spec, vm.to_local);
  RefinementChecker vm_src(vm.system, source, vm.to_local);

  util::Table t({"claim", "paper", "measured"});
  t.add_row({"source stabilizing to (x always 0)", "holds", verdict(src_spec.stabilizing_to())});
  t.add_row({"[bytecode (= source]_init", "holds", verdict(vm_src.refinement_init())});
  t.add_row({"bytecode stabilizing to (x always 0)", "FAILS", verdict(vm_spec.stabilizing_to())});
  t.add_row({"[bytecode <~ source]", "FAILS", verdict(vm_src.convergence_refinement())});
  std::printf("%s\n", t.to_string().c_str());

  auto r = vm_spec.stabilizing_to();
  if (!r.holds) {
    std::printf("fatal state%s (pc / locals / stack):\n",
                r.witness.states.size() > 1 ? " trace" : "");
    std::printf("%s", r.witness.format(vm.system.space()).c_str());
    std::printf("\nthe machine halted with x = %llu: no recovery is possible.\n",
                static_cast<unsigned long long>(vm.to_local.apply(r.witness.states.back())));
  }
  std::printf("\nstate spaces: bytecode %llu states / %zu transitions; source 2 states.\n",
              static_cast<unsigned long long>(vm_spec.c_graph().num_states()),
              vm_spec.c_graph().num_edges());

  // Extension: one watchdog action (restart on halt) restores the
  // tolerance the compiler lost — the graybox recipe applied at the
  // bytecode level.
  System watchdog = make_vm_watchdog(program, 2, 2, 2);
  System wrapped = box(vm.system, watchdog);
  RefinementChecker fixed(wrapped, spec, vm.to_local);
  std::printf("\nextension: (bytecode [] watchdog) stabilizing to (x always 0): %s\n",
              verdict(fixed.stabilizing_to()).c_str());
  return 0;
}
