#pragma once

// Shared helpers for the bench binaries: every experiment prints a
// paper-style table via util::Table plus a short header naming the
// experiment id from DESIGN.md.

#include <chrono>
#include <cstdio>
#include <string>

#include "refinement/check_result.hpp"
#include "util/table.hpp"

namespace cref::bench {

inline std::string verdict(const CheckResult& r) { return r.holds ? "HOLDS" : "FAILS"; }
inline std::string verdict(bool b) { return b ? "HOLDS" : "FAILS"; }
inline std::string yesno(bool b) { return b ? "yes" : "no"; }

inline void header(const char* exp_id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s  %s\n", exp_id, title);
  std::printf("==============================================================\n");
}

/// Wall-clock helper for reporting check durations.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cref::bench
