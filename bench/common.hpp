#pragma once

// Shared helpers for the bench binaries: every experiment prints a
// paper-style table via util::Table plus a short header naming the
// experiment id from DESIGN.md.

#include <chrono>
#include <cstdio>
#include <string>

#include "refinement/check_result.hpp"
#include "refinement/engine.hpp"
#include "sim/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace cref::bench {

inline std::string verdict(const CheckResult& r) { return r.holds ? "HOLDS" : "FAILS"; }
inline std::string verdict(bool b) { return b ? "HOLDS" : "FAILS"; }
inline std::string yesno(bool b) { return b ? "yes" : "no"; }

inline void header(const char* exp_id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s  %s\n", exp_id, title);
  std::printf("==============================================================\n");
}

/// Wall-clock helper for reporting check durations.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Engine knobs shared by every bench main: `--threads N` (0 = all
/// hardware threads) and `--chunk N` (0 = auto).
inline EngineOptions engine_options_from_cli(const util::Cli& cli) {
  EngineOptions eo;
  eo.num_threads = cli.get_size("threads", 0);
  eo.chunk_size = cli.get_size("chunk", 0);
  return eo;
}

/// RNG knob shared by every randomized bench main: `--seed S` (default
/// `fallback`, which reproduces the tables in EXPERIMENTS.md). The
/// resolved value is printed up front so any observed anomaly can be
/// replayed exactly — the same convention as cref_fuzz repro files.
inline std::uint64_t seed_from_cli(const util::Cli& cli, std::uint64_t fallback = 1) {
  const auto seed = static_cast<std::uint64_t>(cli.get_size("seed", fallback));
  std::printf("base seed: %llu (override with --seed N)\n",
              static_cast<unsigned long long>(seed));
  return seed;
}

/// Feeds one checker's phase-timing snapshot into the named series of
/// `phases` (ms): graph-build, scc-build (C and A combined),
/// closure-build, edge-scan.
inline void record_phases(sim::StatsSet& phases, const PhaseTimings& t) {
  phases.add("graph-build", t.graph_build_ms);
  phases.add("scc-build", t.c_scc_ms + t.a_scc_ms);
  phases.add("closure-build", t.closure_ms);
  phases.add("edge-scan", t.edge_scan_ms);
}

/// Prints the per-phase breakdown accumulated in `phases`.
inline void print_phase_breakdown(const sim::StatsSet& phases) {
  std::printf("engine phase breakdown (ms per check):\n%s", phases.format().c_str());
}

}  // namespace cref::bench
