// E17 (extension) — certifying verification: for every stabilizing
// system in the reproduction, generate a locally-checkable stabilization
// certificate (reachability forest + ranking functions) and re-validate
// it with the independent validator. Reports certificate sizes and
// generation/validation times.

#include <cstdio>

#include "common.hpp"
#include "refinement/certificate.hpp"
#include "ring/btr.hpp"
#include "ring/four_state.hpp"
#include "ring/kstate.hpp"
#include "ring/three_state.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

namespace {

std::vector<StateId> table_of(const Abstraction& a) {
  std::vector<StateId> t(a.from().size());
  for (StateId s = 0; s < a.from().size(); ++s) t[s] = a.apply(s);
  return t;
}

void row(util::Table& t, const char* name, int n, RefinementChecker rc,
         const Abstraction* alpha) {
  Timer gen_timer;
  auto cert = make_certificate(rc);
  double gen_ms = gen_timer.ms();
  if (!cert) {
    t.add_row({name, std::to_string(n), "-", "-", "-", "not stabilizing"});
    return;
  }
  std::vector<StateId> table = alpha ? table_of(*alpha) : std::vector<StateId>{};
  Timer val_timer;
  auto verdict_result =
      validate_certificate(rc.c_graph(), rc.a_graph(), rc.a_initial(), table, *cert);
  double val_ms = val_timer.ms();
  std::size_t bytes = cert->a_reachable.size() +
                      cert->a_parent.size() * sizeof(StateId) +
                      cert->a_depth.size() * sizeof(std::uint32_t) +
                      (cert->rho.size() + cert->sigma.size()) * sizeof(std::uint64_t);
  t.add_row({name, std::to_string(n), std::to_string(bytes / 1024) + " KiB",
             util::format_double(gen_ms, 1) + " ms", util::format_double(val_ms, 1) + " ms",
             verdict_result.holds ? "VALID" : ("INVALID: " + verdict_result.reason)});
}

}  // namespace

int main() {
  header("E17", "certifying checks: generate + independently validate");

  util::Table t({"system", "n", "cert size", "generate", "validate", "verdict"});
  for (int n = 3; n <= 6; ++n) {
    BtrLayout bl(n);
    System btr = make_btr(bl);
    {
      ThreeStateLayout l(n);
      Abstraction a3 = make_alpha3(l, bl);
      row(t, "Dijkstra3", n, RefinementChecker(make_dijkstra3(l), btr, a3), &a3);
    }
    {
      FourStateLayout l(n);
      Abstraction a4 = make_alpha4(l, bl);
      row(t, "Dijkstra4", n, RefinementChecker(make_dijkstra4(l), btr, a4), &a4);
    }
    {
      ThreeStateLayout l(n);
      Abstraction a3 = make_alpha3(l, bl);
      System c3w = box_priority(make_c3(l), box(make_w1_dprime(l), make_w2_prime3(l)));
      row(t, "C3<|(W1''[]W2')", n, RefinementChecker(c3w, btr, a3), &a3);
    }
    {
      KStateLayout kl(n, n + 1);
      UtrLayout ul(n);
      Abstraction ak = make_alpha_k(kl, ul);
      row(t, "KState(K=n+1)", n, RefinementChecker(make_kstate(kl), make_utr(ul), ak), &ak);
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "the validator shares no analysis code with the checker: it re-checks\n"
      "only per-edge rank conditions and explicit reachability witnesses.\n"
      "Trusting the verdicts above requires trusting ~60 lines, not the\n"
      "SCC/BFS machinery — and tampering with any component is caught\n"
      "(tests/refinement/certificate_test.cpp).\n");
  return 0;
}
