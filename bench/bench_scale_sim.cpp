// E13 — derived figure: large-scale simulation far beyond model-checkable
// sizes. Convergence steps vs ring size (up to 512 processes) for the
// three concrete protocols under random and adversarial central daemons,
// from fully scrambled states, plus a fault-burst sweep.

#include <cstdio>

#include "common.hpp"
#include "ring/four_state.hpp"
#include "ring/kstate.hpp"
#include "ring/three_state.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

namespace {

struct SimResult {
  sim::Stats steps;
  int failures = 0;
};

SimResult campaign(const System& sys, const StatePredicate& legit,
                   sim::Scheduler& daemon, int runs, std::uint64_t seed,
                   std::size_t max_steps) {
  sim::FaultInjector fi(seed);
  SimResult out;
  StateVec s;
  for (int i = 0; i < runs; ++i) {
    fi.scramble(sys.space(), s);
    auto res = sim::run_until(sys, s, daemon, legit, {.max_steps = max_steps});
    if (res.converged)
      out.steps.add(static_cast<double>(res.steps));
    else
      ++out.failures;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  header("E13", "large-N simulation: convergence steps vs ring size");
  util::Cli cli(argc, argv);
  const std::uint64_t seed = seed_from_cli(cli, 0);

  util::Table t({"system", "procs", "daemon", "mean steps", "p99", "max", "non-conv"});
  for (int n : {16, 64, 192}) {
    const int runs = n <= 64 ? 40 : 12;
    struct Named {
      std::string name;
      System sys;
      StatePredicate legit;
    };
    ThreeStateLayout l3(n);
    FourStateLayout l4(n);
    KStateLayout lk(n, n + 1);
    std::vector<Named> systems;
    systems.push_back({"Dijkstra3", make_dijkstra3(l3), l3.single_token_image()});
    systems.push_back({"Dijkstra4", make_dijkstra4(l4), l4.single_token_image()});
    systems.push_back({"KState", make_kstate(lk), lk.single_token_image()});
    for (auto& named : systems) {
      {
        sim::RandomDaemon daemon(seed + 7 * static_cast<std::uint64_t>(n));
        auto res = campaign(named.sys, named.legit, daemon, runs, seed + 11 * static_cast<std::uint64_t>(n), 4000000);
        t.add_row({named.name, std::to_string(n + 1), "random",
                   util::format_double(res.steps.mean(), 0),
                   util::format_double(res.steps.percentile(99), 0),
                   util::format_double(res.steps.max(), 0),
                   std::to_string(res.failures)});
      }
      if (n <= 64) {
        // Adversary maximizes the abstract token count at each step
        // (one-step lookahead costs O(n^2) per step: small rings only).
        auto& layout3 = l3;
        auto& layout4 = l4;
        auto& layoutk = lk;
        std::function<double(const StateVec&)> score;
        if (named.name == "Dijkstra3")
          score = [&layout3](const StateVec& s) {
            return static_cast<double>(layout3.image_token_count(s));
          };
        else if (named.name == "Dijkstra4")
          score = [&layout4](const StateVec& s) {
            return static_cast<double>(layout4.image_token_count(s));
          };
        else
          score = [&layoutk](const StateVec& s) {
            return static_cast<double>(layoutk.image_token_count(s));
          };
        sim::GreedyAdversaryDaemon daemon(score);
        auto res = campaign(named.sys, named.legit, daemon, 4, seed + 13 * static_cast<std::uint64_t>(n), 4000000);
        t.add_row({named.name, std::to_string(n + 1), "adversary",
                   util::format_double(res.steps.mean(), 0),
                   util::format_double(res.steps.percentile(99), 0),
                   util::format_double(res.steps.max(), 0),
                   std::to_string(res.failures)});
      }
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Fault-burst sweep: corrupt f variables of a legitimate state.
  util::Table fb({"system", "procs", "fault burst", "mean steps to re-converge"});
  int n = 128;
  ThreeStateLayout l3(n);
  System d3 = make_dijkstra3(l3);
  for (int burst : {1, 4, 16, 64, 128}) {
    sim::FaultInjector fi(99);
    sim::RandomDaemon daemon(100);
    sim::Stats stats;
    for (int i = 0; i < 30; ++i) {
      StateVec s = l3.canonical_state();
      fi.corrupt(*l3.space(), s, static_cast<std::size_t>(burst));
      auto res = sim::run_until(d3, s, daemon, l3.single_token_image(),
                                {.max_steps = 4000000});
      if (res.converged) stats.add(static_cast<double>(res.steps));
    }
    fb.add_row({"Dijkstra3", std::to_string(n + 1), std::to_string(burst),
                util::format_double(stats.mean(), 0)});
  }
  std::printf("%s", fb.to_string().c_str());
  std::printf("\nshape: steps grow super-linearly in ring size (the greedy\n"
              "adversary costs ~5-10x the random daemon for the bidirectional\n"
              "rings but HELPS K-state, whose token count can only shrink), and\n"
              "recovery cost grows smoothly with the fault burst — repair is\n"
              "local to the corrupted region.\n");
  return 0;
}
