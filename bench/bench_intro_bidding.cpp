// E3 — the introduction's bidding-server example. Quantitative part:
// random bid streams with a single stored-bid corruption, measuring the
// "(k-1) out of best-k" score for the spec, the sorted-list
// implementation, and the wrapped implementation, across k and
// corruption kinds. Analytic part: the refinement engine confirms the
// implementation is a refinement from initial states but not everywhere.

#include <cstdio>
#include <random>

#include "bidding/server.hpp"
#include "common.hpp"
#include "refinement/checker.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::bidding;

namespace {

constexpr std::int64_t kMax = 1'000'000'000;

template <typename Server>
double run_campaign(int k, std::int64_t corruption_value, int trials,
                    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> bid_dist(1, 1000);
  double total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    Server server(k);
    std::vector<std::int64_t> genuine;
    for (int i = 0; i < 2 * k; ++i) {
      std::int64_t v = bid_dist(rng);
      server.bid(v);
      genuine.push_back(v);
    }
    std::uniform_int_distribution<std::size_t> slot(0, static_cast<std::size_t>(k - 1));
    server.corrupt(slot(rng), corruption_value);
    for (int i = 0; i < 2 * k; ++i) {
      std::int64_t v = bid_dist(rng);
      server.bid(v);
      genuine.push_back(v);
    }
    total += best_k_minus_1_score(genuine, server.winners(), k);
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  header("E3", "Intro: bidding server — (k-1)-of-best-k tolerance under corruption");
  util::Cli cli(argc, argv);
  const std::uint64_t seed = seed_from_cli(cli, 1);

  const int trials = 2000;
  util::Table t({"k", "corruption", "spec", "sorted-list impl", "wrapped impl"});
  for (int k : {2, 4, 8, 16}) {
    for (auto [label, value] :
         {std::pair<const char*, std::int64_t>{"MAX_INT", kMax},
          std::pair<const char*, std::int64_t>{"zero", 0},
          std::pair<const char*, std::int64_t>{"mid (500)", 500}}) {
      t.add_row({std::to_string(k), label,
                 util::format_double(run_campaign<SpecServer>(k, value, trials, seed), 3),
                 util::format_double(run_campaign<SortedListServer>(k, value, trials, seed), 3),
                 util::format_double(run_campaign<WrappedServer>(k, value, trials, seed), 3)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("(1.000 = all of the best k-1 genuine bids are served; the paper's\n"
              " claim is spec == 1 always, sorted-list < 1 for upward corruption.)\n\n");

  // Analytic verdicts on the automaton formulation (k = 3, 4 bid values).
  System spec = make_spec_system(3, 4);
  System impl = make_sorted_list_system(3, 4);
  RefinementChecker rc(impl, spec);
  util::Table a({"relation", "paper", "measured"});
  a.add_row({"[impl (= spec]_init (correct w/o faults)", "holds", verdict(rc.refinement_init())});
  a.add_row({"[impl (= spec] (everywhere)", "FAILS", verdict(rc.everywhere_refinement())});
  a.add_row({"[impl <~ spec]", "FAILS", verdict(rc.convergence_refinement())});
  std::printf("%s", a.to_string().c_str());
  auto frozen = impl.space().encode({3, 0, 0});
  std::printf("\nthe paper's frozen state (head corrupted to MAX): impl deadlock=%s, "
              "spec deadlock=%s\n",
              yesno(impl.is_deadlock(frozen)).c_str(),
              yesno(spec.is_deadlock(frozen)).c_str());
  return 0;
}
