// E6 — Section 4.2's compression diagram, measured: classify every
// transition of C1 against BTR through alpha4, count the classes, print
// one concrete compressed step together with the BTR path it skips, and
// verify no compression lies on a cycle (the condition Lemma 7 rests on).

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "util/strings.hpp"
#include "ring/btr.hpp"
#include "ring/four_state.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

int main() {
  header("E6", "Section 4.2: C1's compressions of BTR computations");

  util::Table t({"n", "C1 transitions", "exact", "compressed", "invalid",
                 "compressed on cycle", "check ms"});
  for (int n = 2; n <= 7; ++n) {
    BtrLayout bl(n);
    FourStateLayout l(n);
    Abstraction a4 = make_alpha4(l, bl);
    Timer timer;
    RefinementChecker rc(make_c1(l), make_btr(bl), a4);
    EdgeStats st = rc.edge_stats();
    // Count compressed edges that lie on cycles of C1 (must be zero).
    std::size_t on_cycle = 0;
    const Scc& scc = rc.c_scc();
    for (StateId s = 0; s < rc.c_graph().num_states(); ++s)
      for (StateId u : rc.c_graph().successors(s))
        if (scc.edge_on_cycle(s, u) &&
            rc.classify_edge(s, u) == EdgeClass::Compressed)
          ++on_cycle;
    t.add_row({std::to_string(n), std::to_string(st.total()), std::to_string(st.exact),
               std::to_string(st.compressed), std::to_string(st.invalid),
               std::to_string(on_cycle), util::format_double(timer.ms(), 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // One concrete compression at n = 3, in the paper's drawing style.
  int n = 3;
  BtrLayout bl(n);
  FourStateLayout l(n);
  RefinementChecker rc(make_c1(l), make_btr(bl), make_alpha4(l, bl));
  if (auto ex = rc.example_compression()) {
    std::printf("example compressed step of C1 (n=%d):\n", n);
    std::printf("  concrete: %s\n            -> %s\n",
                l.space()->format(ex->first.states[0]).c_str(),
                l.space()->format(ex->first.states[1]).c_str());
    std::printf("  the BTR path it compresses (token view):\n%s",
                ex->second.format(*bl.space()).c_str());
    std::printf("  (%zu interior BTR state(s) dropped — exactly the token loss\n"
                "   drawn in the paper's Section 4.2 figure.)\n",
                ex->second.states.size() - 2);
  }
  return 0;
}
