// E18: allocation-free parallel state-space materialization.
//
// Times TransitionGraph::build serially and across thread counts on
// three system families — the 3-state ring (native guarded commands),
// the same ring as an interpreted GCL program, and seeded random
// guarded-command systems over a uniform space — verifying at every
// thread count that the parallel CSR arrays are bit-identical to the
// serial build. Also times the word-parallel bitset BFS over each built
// graph. Alongside the printed table the results are written
// machine-readably to BENCH_graph_build.json in the working directory.
//
//   ./bench_graph_build [--smoke] [--seed N]
//
// --smoke shrinks every configuration to a few thousand states (CI).

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/graph.hpp"
#include "gcl/compile.hpp"
#include "refinement/reachability.hpp"
#include "ring/three_state.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cref;

namespace {

/// Dijkstra's 3-state ring over processes 0..n as GCL source — the
/// parametric generalization of examples/gcl/dijkstra3_n3.gcl, so this
/// leg times the build over compiled-from-text guards.
std::string dijkstra3_gcl(int n) {
  std::string src = "system dijkstra3_n" + std::to_string(n) + " {\n";
  for (int j = 0; j <= n; ++j)
    src += "  var c" + std::to_string(j) + " : 0..2;\n";
  auto c = [](int j) { return "c" + std::to_string(j); };
  src += "  action bottom @0 : " + c(1) + " == (" + c(0) + " + 1) % 3 -> " + c(0) +
         " := (" + c(1) + " + 1) % 3;\n";
  src += "  action top @" + std::to_string(n) + " : " + c(n - 1) + " == " + c(0) +
         " && (" + c(n - 1) + " + 1) % 3 != " + c(n) + " -> " + c(n) + " := (" + c(n - 1) +
         " + 1) % 3;\n";
  for (int j = 1; j < n; ++j) {
    src += "  action up" + std::to_string(j) + " @" + std::to_string(j) + " : " + c(j - 1) +
           " == (" + c(j) + " + 1) % 3 -> " + c(j) + " := " + c(j - 1) + ";\n";
    src += "  action down" + std::to_string(j) + " @" + std::to_string(j) + " : " +
           c(j + 1) + " == (" + c(j) + " + 1) % 3 -> " + c(j) + " := " + c(j + 1) + ";\n";
  }
  src += "  init : c0 == 1";
  for (int j = 1; j <= n; ++j) src += " && c" + std::to_string(j) + " == 0";
  src += ";\n}\n";
  return src;
}

/// A seeded random guarded-command system over `vars` mod-`card`
/// counters: each action fires when one variable holds a specific value
/// and rotates another variable by a nonzero delta (so every firing is a
/// real transition). Edge density is tunable via the action count.
System random_system(std::size_t vars, Value card, std::size_t n_actions,
                     std::uint64_t seed) {
  SpacePtr space = make_uniform_space(vars, card, "r");
  std::mt19937_64 rng(seed);
  std::vector<Action> actions;
  for (std::size_t k = 0; k < n_actions; ++k) {
    const std::size_t gv = util::uniform_below(rng, vars);
    const Value gc = static_cast<Value>(util::uniform_below(rng, card));
    const std::size_t ev = util::uniform_below(rng, vars);
    const Value delta = static_cast<Value>(1 + util::uniform_below(rng, card - 1));
    Action a;
    a.name = "r" + std::to_string(k);
    a.guard = [gv, gc](const StateVec& s) { return s[gv] == gc; };
    a.effect = [ev, delta, card](StateVec& s) {
      s[ev] = static_cast<Value>((s[ev] + delta) % card);
    };
    actions.push_back(std::move(a));
  }
  return System("random-v" + std::to_string(vars), std::move(space), std::move(actions),
                std::nullopt);
}

struct Row {
  std::string family;
  std::string label;
  StateId states;
  std::size_t edges;
  std::size_t threads;
  double build_ms;
  double speedup;
  bool identical;
  double bfs_ms;
  std::size_t bfs_reached;
};

void run_config(const std::string& family, const std::string& label, const System& sys,
                const std::vector<std::size_t>& thread_counts, std::vector<Row>& rows) {
  // Serial baseline: also the reference for the bit-identity checks.
  bench::Timer ts;
  const TransitionGraph serial =
      TransitionGraph::build(sys, EngineOptions{/*num_threads=*/1, /*chunk_size=*/0});
  const double serial_ms = ts.ms();

  // Word-parallel BFS over the whole graph from state 0.
  bench::Timer tb;
  const util::DenseBitset reach = reachable_from(serial, {0});
  const double bfs_ms = tb.ms();

  rows.push_back({family, label, serial.num_states(), serial.num_edges(), 1, serial_ms, 1.0,
                  true, bfs_ms, reach.count()});
  for (std::size_t t : thread_counts) {
    if (t <= 1) continue;
    bench::Timer tp;
    const TransitionGraph par =
        TransitionGraph::build(sys, EngineOptions{/*num_threads=*/t, /*chunk_size=*/0});
    const double par_ms = tp.ms();
    rows.push_back({family, label, par.num_states(), par.num_edges(), t, par_ms,
                    par_ms > 0 ? serial_ms / par_ms : 0.0, par == serial, bfs_ms,
                    reach.count()});
  }
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

void write_json(const char* path, std::uint64_t seed, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E18 graph-build\",\n  \"seed\": " << seed
      << ",\n  \"hardware_threads\": " << resolve_thread_count()
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"family\": \"" << r.family << "\", \"config\": \"" << r.label
        << "\", \"states\": " << r.states << ", \"edges\": " << r.edges
        << ", \"threads\": " << r.threads << ", \"build_ms\": " << r.build_ms
        << ", \"speedup\": " << r.speedup
        << ", \"identical\": " << (r.identical ? "true" : "false")
        << ", \"bfs_ms\": " << r.bfs_ms << ", \"bfs_reached\": " << r.bfs_reached << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"smoke"});
  const bool smoke = cli.has("smoke");
  bench::header("E18", "parallel state-space materialization (build + bitset BFS)");
  const std::uint64_t seed = bench::seed_from_cli(cli);

  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<int> ring_ns = smoke ? std::vector<int>{3, 4} : std::vector<int>{8, 10, 12};
  const std::vector<int> gcl_ns = smoke ? std::vector<int>{3} : std::vector<int>{8, 10};
  const std::size_t rand_vars = smoke ? 5 : 10;

  std::vector<Row> rows;
  for (int n : ring_ns) {
    ring::ThreeStateLayout l(n);
    run_config("ring3", "n=" + std::to_string(n), ring::make_dijkstra3(l), thread_counts,
               rows);
  }
  for (int n : gcl_ns)
    run_config("gcl", "n=" + std::to_string(n), gcl::load_system(dijkstra3_gcl(n)),
               thread_counts, rows);
  run_config("random", "vars=" + std::to_string(rand_vars),
             random_system(rand_vars, /*card=*/4, /*n_actions=*/3 * rand_vars, seed),
             thread_counts, rows);

  util::Table t({"family", "config", "states", "edges", "threads", "build ms", "speedup",
                 "identical", "bfs ms", "reached"});
  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", r.speedup);
    t.add_row({r.family, r.label, std::to_string(r.states), std::to_string(r.edges),
               std::to_string(r.threads), fmt_ms(r.build_ms), speedup,
               r.identical ? "yes" : "NO", fmt_ms(r.bfs_ms), std::to_string(r.bfs_reached)});
  }
  std::printf("%s\n", t.to_string().c_str());

  write_json("BENCH_graph_build.json", seed, rows);
  std::printf("wrote BENCH_graph_build.json\n");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a parallel build differed from the serial CSR arrays (see table)\n");
    return 1;
  }
  return 0;
}
