// E21: static convergence proofs vs explicit state-space exploration.
//
// Prices the static stabilization prover (src/prover) against both
// explicit ground-truth checkers on the paper's systems: synthesis plus
// independent certificate validation on one side, the materialized
// TransitionGraph check and the lazy three-color DFS on the other. The
// point of the experiment is the asymptotics: on DAG-layered programs
// the prover's obligations are layer-local, so its cost is independent
// of |Sigma| while every explicit method pays for the whole product
// space.
//
// Families:
//   chain    drain-and-copy chains (card k, n variables), converging to
//            the all-caught-up predicate. The headline instance k=8 n=6
//            (262144 states) must make the static proof >= 100x cheaper
//            than the explicit check.
//   kstate   Dijkstra's K-state token ring, converging to the unique-
//            privilege predicate. Needs the enumerated-table component,
//            so the static cost here IS Sigma-bound — the honest
//            counterpoint to the chain family.
//   wrapper  the W1/W2 UTR wrappers, proved terminating (the Theorem
//            3/5 side condition).
//   negative the bare UTR ring, which does NOT converge: the prover
//            must fail honestly and ground truth must agree.
//
//   ./bench_prover [--smoke]
//
// Results go to BENCH_prover.json. Exit 1 if any certificate fails the
// independent validator or any proved verdict disagrees with ground
// truth (soundness, not speed).

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "absint/closure.hpp"
#include "common.hpp"
#include "gcl/parser.hpp"
#include "prover/ground_truth.hpp"
#include "prover/prove.hpp"
#include "util/table.hpp"

using namespace cref;

namespace {

/// Drain-and-copy chain: x1 drains to 0, every other variable copies
/// its predecessor. Stabilizes to the all-caught-up predicate.
std::string chain_gcl(int k, int n) {
  auto x = [](int j) { return "x" + std::to_string(j); };
  std::string src = "system chain_k" + std::to_string(k) + "_n" + std::to_string(n) + " {\n";
  for (int j = 1; j <= n; ++j)
    src += "  var " + x(j) + " : 0.." + std::to_string(k - 1) + ";\n";
  src += "  action a1 : " + x(1) + " != 0 -> " + x(1) + " := 0;\n";
  for (int j = 2; j <= n; ++j)
    src += "  action a" + std::to_string(j) + " : " + x(j) + " != " + x(j - 1) +
           " -> " + x(j) + " := " + x(j - 1) + ";\n";
  src += "  init : " + x(1) + " == 0";
  for (int j = 2; j <= n; ++j) src += " && " + x(j) + " == 0";
  src += ";\n}\n";
  return src;
}

std::string chain_target(int n) {
  std::string t = "x1 == 0";
  for (int j = 2; j <= n; ++j)
    t += " && x" + std::to_string(j) + " == x" + std::to_string(j - 1);
  return t;
}

/// Dijkstra's K-state token ring over processes 0..n, all-zeros init.
std::string kstate_gcl(int k, int n) {
  auto c = [](int j) { return "c" + std::to_string(j); };
  std::string src =
      "system kring_k" + std::to_string(k) + "_n" + std::to_string(n) + " {\n";
  for (int j = 0; j <= n; ++j)
    src += "  var " + c(j) + " : 0.." + std::to_string(k - 1) + ";\n";
  src += "  action bottom @0 : " + c(0) + " == " + c(n) + " -> " + c(0) + " := (" +
         c(0) + " + 1) % " + std::to_string(k) + ";\n";
  for (int j = 1; j <= n; ++j)
    src += "  action up" + std::to_string(j) + " @" + std::to_string(j) + " : " +
           c(j) + " != " + c(j - 1) + " -> " + c(j) + " := " + c(j - 1) + ";\n";
  src += "  init : " + c(0) + " == 0";
  for (int j = 1; j <= n; ++j) src += " && " + c(j) + " == 0";
  src += ";\n}\n";
  return src;
}

const char* kW1 = R"(
system w1_utr {
  var t0 : bool;
  var t1 : bool;
  var t2 : bool;
  action create : t0 == 0 && t1 == 0 && t2 == 0 -> t0 := 1, t1 := 0, t2 := 0;
}
)";

const char* kW2 = R"(
system w2_utr {
  var t0 : bool;
  var t1 : bool;
  var t2 : bool;
  action cancel0 : t0 != 0 && t1 != 0 -> t1 := 0;
  action cancel1 : t1 != 0 && t2 != 0 -> t2 := 0;
  action cancel2 : t2 != 0 && t0 != 0 -> t0 := 0;
}
)";

const char* kUtr = R"(
system utr {
  var t0 : bool;
  var t1 : bool;
  var t2 : bool;
  action pass0 : t0 != 0 -> t0 := 0, t1 := 1;
  action pass1 : t1 != 0 -> t1 := 0, t2 := 1;
  action pass2 : t2 != 0 -> t2 := 0, t0 := 1;
  init : t0 == 1 && t1 == 0 && t2 == 0;
}
)";

struct Row {
  std::string family;
  std::string config;
  std::size_t sigma = 0;
  std::string goal;          // "stabilization" / "termination"
  bool expect_proved = true;
  bool proved = false;
  bool validated = false;    // certificate survived the independent validator
  bool sound = true;         // no proved-vs-ground-truth disagreement
  double static_ms = 0.0;    // synthesis + validation
  double explicit_ms = 0.0;  // materialized TransitionGraph check
  double lazy_ms = 0.0;      // three-color DFS check
};

double speedup(const Row& r) {
  return r.static_ms > 0.0 ? r.explicit_ms / r.static_ms : 0.0;
}

/// One convergence instance: prove + validate vs both explicit checks.
/// `budget` == 0 keeps the prover's default; the chain family passes a
/// small one, which is the whole point of the experiment — it caps
/// every obligation at its layer-local footprint AND routes validation
/// through the symbolic mode-B path, making the static cost independent
/// of |Sigma| (a budget-capped proof is still a proof: the budget only
/// bounds enumeration size, never weakens an obligation).
Row run_convergence(const std::string& family, const std::string& config,
                    const std::string& src, const std::string& target_text,
                    bool expect_proved, std::size_t budget = 0) {
  Row row{family, config, 0, "stabilization", expect_proved};
  const gcl::SystemAst ast = gcl::parse(src);
  std::string err;
  std::optional<gcl::Expr> target;
  if (target_text.empty()) {
    target = prover::enabled_one_predicate(ast);
  } else {
    target = absint::parse_predicate(ast, target_text, &err);
    if (!target) {
      std::fprintf(stderr, "bad target for %s: %s\n", config.c_str(), err.c_str());
      row.sound = false;
      return row;
    }
  }

  prover::ProveOptions popts;
  if (budget) popts.budget = budget;
  bench::Timer ts;
  const prover::ProveResult res = prover::prove_convergence(ast, *target, popts);
  if (res.proved) {
    std::string why;
    row.validated = prover::validate_certificate(ast, &*target, *res.certificate, &why);
    if (!row.validated)
      std::fprintf(stderr, "%s: certificate rejected: %s\n", config.c_str(), why.c_str());
  }
  row.static_ms = ts.ms();
  row.proved = res.proved;

  bench::Timer te;
  const prover::GroundTruth ex = prover::explicit_check(ast, *target);
  row.explicit_ms = te.ms();
  bench::Timer tl;
  const prover::GroundTruth lazy = prover::lazy_check(ast, *target);
  row.lazy_ms = tl.ms();
  row.sigma = ex.states;

  // Soundness: a proof the explicit graph refutes, a certificate the
  // validator rejects, or the two ground truths disagreeing.
  if (ex.applicable && lazy.applicable && ex.converges() != lazy.converges())
    row.sound = false;
  if (row.proved && ex.applicable &&
      !(ex.converges() && (!res.certificate->closure_proved || ex.closed)))
    row.sound = false;
  if (row.proved && !row.validated) row.sound = false;
  return row;
}

Row run_termination(const std::string& config, const std::string& src) {
  Row row{"wrapper", config, 0, "termination", true};
  const gcl::SystemAst ast = gcl::parse(src);

  bench::Timer ts;
  const prover::ProveResult res = prover::prove_termination(ast);
  if (res.proved) {
    std::string why;
    row.validated = prover::validate_certificate(ast, nullptr, *res.certificate, &why);
    if (!row.validated)
      std::fprintf(stderr, "%s: certificate rejected: %s\n", config.c_str(), why.c_str());
  }
  row.static_ms = ts.ms();
  row.proved = res.proved;

  bench::Timer te;
  bool applicable = false;
  const bool truth = prover::explicit_terminates(ast, &applicable);
  row.explicit_ms = te.ms();
  row.lazy_ms = row.explicit_ms;  // no lazy leg for whole-graph acyclicity
  if (row.proved && applicable && !truth) row.sound = false;
  if (row.proved && !row.validated) row.sound = false;
  return row;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string fmt_x(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", x);
  return buf;
}

void write_json(const char* path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E21 static-prover\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"family\": \"" << r.family << "\", \"config\": \"" << r.config
        << "\", \"sigma_states\": " << r.sigma << ", \"goal\": \"" << r.goal
        << "\", \"proved\": " << (r.proved ? "true" : "false")
        << ", \"validated\": " << (r.validated ? "true" : "false")
        << ", \"static_ms\": " << r.static_ms << ", \"explicit_ms\": " << r.explicit_ms
        << ", \"lazy_ms\": " << r.lazy_ms << ", \"speedup\": " << speedup(r)
        << ", \"sound\": " << (r.sound ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"smoke"});
  const bool smoke = cli.has("smoke");
  bench::header("E21", "static stabilization proofs vs explicit exploration");

  std::vector<Row> rows;

  // chain: Sigma grows k^n, static cost stays layer-local. The full run
  // carries the k=8 n=6 acceptance instance.
  const std::vector<std::pair<int, int>> chains =
      smoke ? std::vector<std::pair<int, int>>{{4, 4}, {8, 6}}
            : std::vector<std::pair<int, int>>{{4, 4}, {6, 5}, {8, 6}};
  for (auto [k, n] : chains) {
    rows.push_back(run_convergence(
        "chain", "k=" + std::to_string(k) + " n=" + std::to_string(n),
        chain_gcl(k, n), chain_target(n), /*expect_proved=*/true,
        /*budget=*/512));
  }

  // kstate: the table component prices the whole of Sigma — still ahead
  // of the explicit check (no CSR materialization), but Sigma-bound.
  const std::vector<std::pair<int, int>> rings =
      smoke ? std::vector<std::pair<int, int>>{{5, 3}}
            : std::vector<std::pair<int, int>>{{5, 3}, {5, 4}, {6, 5}};
  for (auto [k, n] : rings) {
    rows.push_back(run_convergence(
        "kstate", "K=" + std::to_string(k) + " n=" + std::to_string(n),
        kstate_gcl(k, n), /*enabled-one*/ "", /*expect_proved=*/true));
  }

  rows.push_back(run_termination("w1", kW1));
  rows.push_back(run_termination("w2", kW2));

  // negative: bare UTR does not converge; honesty check on both sides.
  rows.push_back(run_convergence("negative", "utr n=3", kUtr, "", false));

  util::Table t({"family", "config", "|Sigma|", "goal", "proved", "validated",
                 "static ms", "explicit ms", "lazy ms", "speedup", "sound"});
  bool all_sound = true;
  bool expectations_met = true;
  for (const Row& r : rows) {
    all_sound = all_sound && r.sound;
    expectations_met = expectations_met && (r.proved == r.expect_proved);
    t.add_row({r.family, r.config, std::to_string(r.sigma), r.goal,
               r.proved ? "yes" : "no", r.validated ? "yes" : "no",
               fmt_ms(r.static_ms), fmt_ms(r.explicit_ms), fmt_ms(r.lazy_ms),
               fmt_x(speedup(r)), r.sound ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The acceptance instance: on the k=8 n=6 chain the static proof must
  // be >= 100x cheaper than the explicit check.
  for (const Row& r : rows) {
    if (r.family == "chain" && r.config == "k=8 n=6") {
      const bool ok = r.proved && r.validated && speedup(r) >= 100.0;
      std::printf("acceptance (chain k=8 n=6): static %.3f ms vs explicit %.3f ms "
                  "(%.0fx) -> %s\n",
                  r.static_ms, r.explicit_ms, speedup(r), ok ? "PASS" : "FAIL");
    }
  }

  write_json("BENCH_prover.json", rows);
  std::printf("wrote BENCH_prover.json\n");
  if (!all_sound) {
    std::fprintf(stderr, "FAIL: a prover verdict disagreed with ground truth or "
                         "failed validation (see table)\n");
    return 1;
  }
  if (!expectations_met) {
    std::fprintf(stderr, "FAIL: a family's expected verdict flipped (see table)\n");
    return 1;
  }
  return 0;
}
