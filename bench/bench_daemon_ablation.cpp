// E14 — ablation over the execution daemon: the paper (like Dijkstra)
// assumes a central daemon. Here the concrete protocols run under
// random-central, round-robin, and SYNCHRONOUS (all enabled processes
// fire against the old state) semantics; synchronous execution is a
// distributed-daemon special case the theory does not cover, and the
// 3-state systems indeed livelock under it from some states.

#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "core/distributed.hpp"
#include "refinement/checker.hpp"
#include "ring/btr.hpp"
#include "ring/four_state.hpp"
#include "ring/kstate.hpp"
#include "ring/three_state.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

namespace {

// Synchronous run: all processes fire each round; returns rounds or
// max_rounds if it never converges.
std::size_t run_synchronous(const System& sys, StateVec s, const StatePredicate& legit,
                            int procs, std::size_t max_rounds, bool* converged) {
  std::vector<int> everyone;
  for (int p = 0; p < procs; ++p) everyone.push_back(p);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (legit(s)) {
      *converged = true;
      return round;
    }
    if (!sim::step_synchronous(sys, s, everyone)) {
      *converged = legit(s);
      return round;
    }
  }
  *converged = legit(s);
  return max_rounds;
}

}  // namespace

int main(int argc, char** argv) {
  header("E14", "daemon ablation: central vs round-robin vs synchronous");
  util::Cli cli(argc, argv);
  const std::uint64_t seed = seed_from_cli(cli, 5);

  const int n = 64;
  const int runs = 40;
  util::Table t({"system", "daemon", "converged", "mean steps/rounds", "max"});

  ThreeStateLayout l3(n);
  FourStateLayout l4(n);
  KStateLayout lk(n, n + 1);
  struct Named {
    std::string name;
    System sys;
    StatePredicate legit;
  };
  std::vector<Named> systems;
  systems.push_back({"Dijkstra3", make_dijkstra3(l3), l3.single_token_image()});
  systems.push_back({"Dijkstra4", make_dijkstra4(l4), l4.single_token_image()});
  systems.push_back({"KState(K=n+1)", make_kstate(lk), lk.single_token_image()});

  for (auto& named : systems) {
    {
      sim::FaultInjector fi(seed);
      sim::RandomDaemon daemon(seed + 1);
      sim::Stats st;
      int ok = 0;
      StateVec s;
      for (int i = 0; i < runs; ++i) {
        fi.scramble(named.sys.space(), s);
        auto res =
            sim::run_until(named.sys, s, daemon, named.legit, {.max_steps = 2000000});
        if (res.converged) {
          ++ok;
          st.add(static_cast<double>(res.steps));
        }
      }
      t.add_row({named.name, "random central", std::to_string(ok) + "/" + std::to_string(runs),
                 util::format_double(st.mean(), 0), util::format_double(st.max(), 0)});
    }
    {
      sim::FaultInjector fi(seed + 2);
      sim::RoundRobinDaemon daemon;
      sim::Stats st;
      int ok = 0;
      StateVec s;
      for (int i = 0; i < runs; ++i) {
        fi.scramble(named.sys.space(), s);
        auto res =
            sim::run_until(named.sys, s, daemon, named.legit, {.max_steps = 2000000});
        if (res.converged) {
          ++ok;
          st.add(static_cast<double>(res.steps));
        }
      }
      t.add_row({named.name, "round-robin", std::to_string(ok) + "/" + std::to_string(runs),
                 util::format_double(st.mean(), 0), util::format_double(st.max(), 0)});
    }
    {
      sim::FaultInjector fi(seed + 4);
      sim::Stats st;
      int ok = 0;
      StateVec s;
      for (int i = 0; i < runs; ++i) {
        fi.scramble(named.sys.space(), s);
        bool converged = false;
        std::size_t rounds =
            run_synchronous(named.sys, s, named.legit, n + 1, 200000, &converged);
        if (converged) {
          ++ok;
          st.add(static_cast<double>(rounds));
        }
      }
      t.add_row({named.name, "synchronous", std::to_string(ok) + "/" + std::to_string(runs),
                 util::format_double(st.mean(), 0), util::format_double(st.max(), 0)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Exhaustive synchronous classification at model-checkable sizes:
  // synchronous execution is deterministic, so every state either
  // converges or enters a limit cycle.
  util::Table ex({"system", "n", "states", "converge", "oscillate"});
  for (int small_n : {2, 3, 4}) {
    struct Cfg {
      std::string name;
      System sys;
      StatePredicate legit;
      SpacePtr space;
    };
    ThreeStateLayout s3(small_n);
    FourStateLayout s4(small_n);
    KStateLayout sk(small_n, small_n + 1);
    std::vector<Cfg> cfgs;
    cfgs.push_back({"Dijkstra3", make_dijkstra3(s3), s3.single_token_image(), s3.space()});
    cfgs.push_back({"Dijkstra4", make_dijkstra4(s4), s4.single_token_image(), s4.space()});
    cfgs.push_back({"KState", make_kstate(sk), sk.single_token_image(), sk.space()});
    std::vector<int> everyone;
    for (int p = 0; p <= small_n; ++p) everyone.push_back(p);
    for (auto& cfg : cfgs) {
      std::size_t conv = 0, osc = 0;
      StateVec v;
      for (StateId id = 0; id < cfg.space->size(); ++id) {
        cfg.space->decode_into(id, v);
        std::vector<StateVec> seen;
        bool converged = false;
        while (true) {
          if (cfg.legit(v)) {
            converged = true;
            break;
          }
          if (std::find(seen.begin(), seen.end(), v) != seen.end()) break;
          seen.push_back(v);
          if (!sim::step_synchronous(cfg.sys, v, everyone)) break;
        }
        converged ? ++conv : ++osc;
      }
      ex.add_row({cfg.name, std::to_string(small_n), std::to_string(cfg.space->size()),
                  std::to_string(conv), std::to_string(osc)});
    }
  }
  std::printf("%s\n", ex.to_string().c_str());

  // EXACT distributed-daemon verdicts (any nonempty subset of processes
  // fires simultaneously): model-checked via the distributed closure.
  util::Table dd({"system", "n", "distributed-daemon stabilizing"});
  for (int small_n : {2, 3, 4}) {
    std::vector<int> procs;
    for (int p = 0; p <= small_n; ++p) procs.push_back(p);
    BtrLayout bl(small_n);
    ThreeStateLayout s3(small_n);
    FourStateLayout s4(small_n);
    KStateLayout sk(small_n, small_n + 1);
    UtrLayout su(small_n);
    dd.add_row({"Dijkstra3", std::to_string(small_n),
                verdict(RefinementChecker(make_distributed(make_dijkstra3(s3), procs),
                                          make_btr(bl), make_alpha3(s3, bl))
                            .stabilizing_to())});
    dd.add_row({"Dijkstra4", std::to_string(small_n),
                verdict(RefinementChecker(make_distributed(make_dijkstra4(s4), procs),
                                          make_btr(bl), make_alpha4(s4, bl))
                            .stabilizing_to())});
    dd.add_row({"KState", std::to_string(small_n),
                verdict(RefinementChecker(make_distributed(make_kstate(sk), procs),
                                          make_utr(su), make_alpha_k(sk, su))
                            .stabilizing_to())});
  }
  std::printf("%s\n", dd.to_string().c_str());
  std::printf(
      "reading: all three stabilize under any central daemon (the paper's\n"
      "model) — and, exactly model-checked above, under the DISTRIBUTED\n"
      "daemon too. Synchronous execution is likewise outside the theory,\n"
      "yet the exhaustive sweep finds NO oscillating state at these sizes:\n"
      "the top/bottom asymmetry of Dijkstra's rings breaks the symmetric\n"
      "limit cycles that plague anonymous synchronous rings, and synchrony\n"
      "is in fact the FASTEST schedule measured (parallel repair).\n");
  return 0;
}
