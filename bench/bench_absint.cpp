// E19: abstract-interpretation pruning of the explicit engine.
//
// Measures what the absint fixpoint (src/absint) buys the explicit
// TransitionGraph build: for each program the abstract reachable region
// R# is computed from the init region, installed as the engine's state
// filter, and the pruned build is compared against the unpruned one —
// states per side, analysis time vs build time saved, and slice-level
// agreement on every member state (the pruning soundness contract).
//
// Two families:
//   ring    Dijkstra's K-state token ring as GCL. From the all-zeros
//           init the reachable set is exactly K*(n+1) of the K^(n+1)
//           states, each a single point — the disjunctive region tracks
//           them exactly, so pruning collapses the build to a sliver.
//   random  seeded random GCL programs whose init pins a subset of the
//           variables; unwritten variables stay pinned in R#, shrinking
//           the materialized product space by the pinned cardinalities.
//
//   ./bench_absint [--smoke] [--seed N]
//
// Results go to BENCH_absint.json. Exit 1 if any pruned build disagrees
// with its unpruned reference on a member state (soundness, not speed).

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "absint/absint.hpp"
#include "common.hpp"
#include "core/graph.hpp"
#include "gcl/compile.hpp"
#include "gcl/parser.hpp"
#include "refinement/reachability.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cref;

namespace {

/// Dijkstra's K-state token ring over processes 0..n, all-zeros init.
std::string kstate_gcl(int k, int n) {
  auto c = [](int j) { return "c" + std::to_string(j); };
  std::string src =
      "system kring_k" + std::to_string(k) + "_n" + std::to_string(n) + " {\n";
  for (int j = 0; j <= n; ++j)
    src += "  var " + c(j) + " : 0.." + std::to_string(k - 1) + ";\n";
  src += "  action bottom @0 : " + c(0) + " == " + c(n) + " -> " + c(0) + " := (" +
         c(0) + " + 1) % " + std::to_string(k) + ";\n";
  for (int j = 1; j <= n; ++j) {
    src += "  action up" + std::to_string(j) + " @" + std::to_string(j) + " : " +
           c(j) + " != " + c(j - 1) + " -> " + c(j) + " := " + c(j - 1) + ";\n";
  }
  src += "  init : " + c(0) + " == 0";
  for (int j = 1; j <= n; ++j) src += " && " + c(j) + " == 0";
  src += ";\n}\n";
  return src;
}

/// A seeded random GCL program: `vars` mod-`card` counters, init pins
/// the first `pinned` of them, and each action bumps one variable when
/// another holds a specific value. Variables no action writes keep
/// their pinned value in every reachable state.
std::string random_gcl(std::size_t vars, int card, std::size_t pinned,
                       std::size_t n_actions, std::mt19937_64& rng) {
  auto v = [](std::size_t j) { return "v" + std::to_string(j); };
  std::string src = "system rnd {\n";
  for (std::size_t j = 0; j < vars; ++j)
    src += "  var " + v(j) + " : 0.." + std::to_string(card - 1) + ";\n";
  for (std::size_t a = 0; a < n_actions; ++a) {
    const std::size_t gv = util::uniform_below(rng, vars);
    const int gc = static_cast<int>(util::uniform_below(rng, card));
    // Write only into the un-pinned upper half so the pinned prefix
    // stays constant and R# keeps the product space small.
    const std::size_t ev =
        pinned + util::uniform_below(rng, vars - pinned);
    const int delta = 1 + static_cast<int>(util::uniform_below(rng, card - 1));
    src += "  action a" + std::to_string(a) + " : " + v(gv) + " == " +
           std::to_string(gc) + " -> " + v(ev) + " := (" + v(ev) + " + " +
           std::to_string(delta) + ") % " + std::to_string(card) + ";\n";
  }
  src += "  init : " + v(0) + " == " + std::to_string(card - 1);
  for (std::size_t j = 1; j < pinned; ++j)
    src += " && " + v(j) + " == " + std::to_string(static_cast<int>(
                                        util::uniform_below(rng, card)));
  src += ";\n}\n";
  return src;
}

struct Row {
  std::string family;
  std::string config;
  StateId sigma;            // |Sigma|: all product states
  std::size_t reach;        // explicitly reachable from init
  std::size_t rsharp;       // members of R# within Sigma (= pruned sources)
  bool collapsed;
  double analysis_ms;       // absint fixpoint
  double full_ms;           // unpruned build
  double pruned_ms;         // R#-filtered build
  bool identical;           // member slices bit-identical, others empty
};

Row run_config(const std::string& family, const std::string& config,
               const std::string& src) {
  gcl::SystemAst ast = gcl::parse(src);
  System sys = gcl::compile(ast);

  bench::Timer tf;
  const TransitionGraph full = TransitionGraph::build(sys);
  const double full_ms = tf.ms();
  const util::DenseBitset reach = reachable_from(full, sys.initial_states());

  const absint::AbsintResult res = absint::analyze_reachable(ast);

  sys.set_state_filter(absint::make_state_filter(res.region));
  bench::Timer tp;
  const TransitionGraph pruned = TransitionGraph::build(sys);
  const double pruned_ms = tp.ms();

  const StateId n = full.num_states();
  StateVec decoded;
  std::size_t members = 0;
  bool identical = true;
  for (StateId s = 0; s < n; ++s) {
    sys.space().decode_into(s, decoded);
    auto ps = pruned.successors(s);
    if (res.region.contains(decoded)) {
      ++members;
      auto fs = full.successors(s);
      identical = identical && std::equal(ps.begin(), ps.end(), fs.begin(), fs.end());
    } else {
      identical = identical && ps.empty();
      identical = identical && !reach.test(s);  // soundness: R# covers reach
    }
  }
  return {family,  config,  n,         reach.count(), members,
          res.collapsed, res.analysis_ms, full_ms, pruned_ms, identical};
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

std::string fmt_pct(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", p);
  return buf;
}

double reduction_pct(const Row& r) {
  return r.sigma ? 100.0 * (1.0 - static_cast<double>(r.rsharp) /
                                      static_cast<double>(r.sigma))
                 : 0.0;
}

void write_json(const char* path, std::uint64_t seed, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E19 absint-pruning\",\n  \"seed\": " << seed
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"family\": \"" << r.family << "\", \"config\": \"" << r.config
        << "\", \"sigma_states\": " << r.sigma << ", \"explicit_states\": " << r.reach
        << ", \"rsharp_states\": " << r.rsharp
        << ", \"collapsed\": " << (r.collapsed ? "true" : "false")
        << ", \"analysis_ms\": " << r.analysis_ms << ", \"full_build_ms\": " << r.full_ms
        << ", \"pruned_build_ms\": " << r.pruned_ms
        << ", \"saved_ms\": " << r.full_ms - r.pruned_ms
        << ", \"reduction_pct\": " << reduction_pct(r)
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"smoke"});
  const bool smoke = cli.has("smoke");
  bench::header("E19", "abstract-interpretation engine pruning (R# state filter)");
  const std::uint64_t seed = bench::seed_from_cli(cli);

  // (K, n) ring configs; the full run includes the paper-scale K=8,
  // n=6 instance (8^7 states, 56 reachable).
  const std::vector<std::pair<int, int>> rings =
      smoke ? std::vector<std::pair<int, int>>{{4, 3}, {5, 4}}
            : std::vector<std::pair<int, int>>{{6, 5}, {8, 5}, {8, 6}};
  const std::size_t n_random = smoke ? 2 : 4;

  std::vector<Row> rows;
  for (auto [k, n] : rings) {
    rows.push_back(run_config(
        "ring", "K=" + std::to_string(k) + " n=" + std::to_string(n), kstate_gcl(k, n)));
  }
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < n_random; ++i) {
    const std::size_t vars = smoke ? 4 : 6;
    const int card = smoke ? 3 : 4;
    rows.push_back(run_config("random", "#" + std::to_string(i),
                              random_gcl(vars, card, /*pinned=*/vars / 2,
                                         /*n_actions=*/2 * vars, rng)));
  }

  util::Table t({"family", "config", "|Sigma|", "explicit", "|R#|", "reduction",
                 "analysis ms", "full ms", "pruned ms", "saved ms", "identical"});
  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    t.add_row({r.family, r.config, std::to_string(r.sigma), std::to_string(r.reach),
               std::to_string(r.rsharp), fmt_pct(reduction_pct(r)),
               fmt_ms(r.analysis_ms), fmt_ms(r.full_ms), fmt_ms(r.pruned_ms),
               fmt_ms(r.full_ms - r.pruned_ms), r.identical ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The acceptance instance: K=8, n=6 must prune >= 30% of the states
  // it would otherwise materialize, at no wall-clock cost.
  for (const Row& r : rows) {
    if (r.family == "ring" && r.config == "K=8 n=6") {
      const bool ok = reduction_pct(r) >= 30.0 && r.pruned_ms <= r.full_ms;
      std::printf("acceptance (K=8 n=6): reduction %s, saved %.2f ms -> %s\n",
                  fmt_pct(reduction_pct(r)).c_str(), r.full_ms - r.pruned_ms,
                  ok ? "PASS" : "FAIL");
    }
  }

  write_json("BENCH_absint.json", seed, rows);
  std::printf("wrote BENCH_absint.json\n");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a pruned build disagreed with its unpruned reference "
                 "on a member state (see table)\n");
    return 1;
  }
  return 0;
}
