// E15 — google-benchmark micro-benchmarks of the verification engine:
// transition-graph construction, reachability, SCC, edge classification,
// and the full relation checks, as a function of ring size (state count
// grows exponentially in n).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "refinement/checker.hpp"
#include "refinement/convergence_time.hpp"
#include "refinement/reachability.hpp"
#include "refinement/scc.hpp"
#include "ring/btr.hpp"
#include "ring/three_state.hpp"

using namespace cref;
using namespace cref::ring;

namespace {

void BM_GraphBuild(benchmark::State& state) {
  ThreeStateLayout l(static_cast<int>(state.range(0)));
  System d3 = make_dijkstra3(l);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitionGraph::build(d3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(l.space()->size()));
}
BENCHMARK(BM_GraphBuild)->DenseRange(3, 8)->Unit(benchmark::kMillisecond);

void BM_Reachability(benchmark::State& state) {
  ThreeStateLayout l(static_cast<int>(state.range(0)));
  System d3 = make_dijkstra3(l);
  TransitionGraph g = TransitionGraph::build(d3);
  std::vector<StateId> init = d3.initial_states();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reachable_from(g, init));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_states()));
}
BENCHMARK(BM_Reachability)->DenseRange(3, 8)->Unit(benchmark::kMillisecond);

void BM_Scc(benchmark::State& state) {
  ThreeStateLayout l(static_cast<int>(state.range(0)));
  TransitionGraph g = TransitionGraph::build(make_dijkstra3(l));
  for (auto _ : state) {
    Scc scc(g);
    benchmark::DoNotOptimize(scc.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_states()));
}
BENCHMARK(BM_Scc)->DenseRange(3, 8)->Unit(benchmark::kMillisecond);

void BM_StabilizingCheck(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ThreeStateLayout l(n);
  BtrLayout bl(n);
  for (auto _ : state) {
    RefinementChecker rc(make_dijkstra3(l), make_btr(bl), make_alpha3(l, bl));
    benchmark::DoNotOptimize(rc.stabilizing_to().holds);
  }
}
BENCHMARK(BM_StabilizingCheck)->DenseRange(3, 7)->Unit(benchmark::kMillisecond);

void BM_ConvergenceRefinementCheck(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ThreeStateLayout l(n);
  BtrLayout bl(n);
  System c3 = with_reachable_initial(make_c3(l), l.canonical_state());
  for (auto _ : state) {
    RefinementChecker rc(c3, make_btr(bl), make_alpha3(l, bl));
    benchmark::DoNotOptimize(rc.convergence_refinement().holds);
  }
}
BENCHMARK(BM_ConvergenceRefinementCheck)->DenseRange(3, 6)->Unit(benchmark::kMillisecond);

// Parallel-engine scaling: the same scan at 1 / 2 / 4 threads. The
// checker is constructed (and its SCC / closure caches warmed) outside
// the timed loop, so these measure the pure edge-scan phase — the part
// the thread pool parallelizes. Reproduce the speedup table with
//   bench_engine_micro --benchmark_filter='EdgeStatsScan|StabilizingScan'

void BM_EdgeStatsScan(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ThreeStateLayout l(n);
  BtrLayout bl(n);
  RefinementChecker rc(make_dijkstra3(l), make_btr(bl), make_alpha3(l, bl));
  rc.set_engine_options({.num_threads = static_cast<std::size_t>(state.range(1))});
  (void)rc.edge_stats();  // warm the A-side closure
  for (auto _ : state) {
    benchmark::DoNotOptimize(rc.edge_stats().total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rc.c_graph().num_edges()));
}
BENCHMARK(BM_EdgeStatsScan)
    ->ArgsProduct({{6, 7, 8}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_StabilizingScan(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ThreeStateLayout l(n);
  BtrLayout bl(n);
  RefinementChecker rc(make_dijkstra3(l), make_btr(bl), make_alpha3(l, bl));
  rc.set_engine_options({.num_threads = static_cast<std::size_t>(state.range(1))});
  (void)rc.stabilizing_to();  // warm R_A and the C-side SCC
  for (auto _ : state) {
    benchmark::DoNotOptimize(rc.stabilizing_to().holds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rc.c_graph().num_edges()));
}
BENCHMARK(BM_StabilizingScan)
    ->ArgsProduct({{6, 7, 8}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_ConvergenceScan(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ThreeStateLayout l(n);
  BtrLayout bl(n);
  System c3 = with_reachable_initial(make_c3(l), l.canonical_state());
  RefinementChecker rc(c3, make_btr(bl), make_alpha3(l, bl));
  rc.set_engine_options({.num_threads = static_cast<std::size_t>(state.range(1))});
  (void)rc.convergence_refinement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rc.convergence_refinement().holds);
  }
}
BENCHMARK(BM_ConvergenceScan)
    ->ArgsProduct({{5, 6}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_ConvergenceTime(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ThreeStateLayout l(n);
  BtrLayout bl(n);
  RefinementChecker rc(make_dijkstra3(l), make_btr(bl), make_alpha3(l, bl));
  (void)rc.stabilizing_to();
  for (auto _ : state) {
    benchmark::DoNotOptimize(convergence_time(rc).worst_steps);
  }
}
BENCHMARK(BM_ConvergenceTime)->DenseRange(3, 7)->Unit(benchmark::kMillisecond);

// Guided self-scheduling vs fixed chunks on a deliberately skewed
// workload: item i costs O(i) spin iterations, so with fixed chunks the
// worker that draws the tail chunk finishes last while the others idle.
// Dynamic chunking (EngineOptions::dynamic_chunking) hands out
// shrinking chunks so late, expensive items arrive in small grains.
// Args: {threads, dynamic}. Reproduce the comparison with
//   bench_engine_micro --benchmark_filter=SkewedChunks
void BM_SkewedChunks(benchmark::State& state) {
  EngineOptions eo;
  eo.num_threads = static_cast<std::size_t>(state.range(0));
  eo.dynamic_chunking = state.range(1) != 0;
  const std::size_t n = 4096;
  std::vector<std::uint64_t> sums(n, 0);
  for (auto _ : state) {
    parallel_chunks(n, eo, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        std::uint64_t acc = i;
        for (std::size_t k = 0; k < 40 * i; ++k) acc = acc * 6364136223846793005ull + 1ull;
        sums[i] = acc;
      }
    });
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SkewedChunks)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
