// E22: batched fault-environment campaigns at the million-run scale.
//
// Two legs:
//
//  1. Full sweep — {kstate, btr+w1w2, workring} x {scramble, burst:2,
//     corrupt low/high, crash+restart} x {random, round-robin,
//     adversary} x runs_per_cell seeds, > 1e6 runs in full mode. The
//     whole sweep executes twice, at --threads 8 and --threads 1, and
//     the bench exits 1 unless every cell aggregate is byte-identical —
//     the campaign determinism contract, end to end.
//
//  2. Corruption-rate threshold — the K-state ring swept across
//     per-step corruption rates {0, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
//     1e-1} under a fixed round budget, reproducing Dolev & Herman's
//     unsupportive-environment finding: convergence tolerates faults up
//     to a rate comparable to 1/T_conv, then collapses — below the
//     threshold the rate stays ~100% with mildly inflated step counts,
//     above it runs exhaust the budget without stabilizing.
//
// Alongside the printed tables the results are written machine-readably
// to BENCH_campaign.json in the working directory.
//
//   ./bench_campaign [--smoke] [--seed N] [--threads T]
//
// --smoke shrinks runs_per_cell to a few dozen (CI); the identity check
// then compares --threads 2 against --threads 1.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "ring/btr.hpp"
#include "ring/kstate.hpp"
#include "ring/work_ring.hpp"
#include "sim/campaign.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cref;

namespace {

/// Owns the layouts/systems the sweep references (CampaignSystem
/// borrows raw pointers, so lifetimes must cover both driver passes).
struct Fleet {
  std::vector<std::unique_ptr<System>> owned;
  std::vector<sim::CampaignSystem> entries;

  void add(std::string name, System sys, StatePredicate legit,
           std::function<double(const StateVec&)> score, StateVec base) {
    owned.push_back(std::make_unique<System>(std::move(sys)));
    entries.push_back({std::move(name), owned.back().get(), std::move(legit),
                       std::move(score), std::move(base)});
  }
};

void add_kstate(Fleet& fleet, int n) {
  auto l = std::make_shared<ring::KStateLayout>(n, n + 1);
  StateVec base(l->space()->var_count(), 0);  // all-equal counters: one token
  fleet.add("kstate", ring::make_kstate(*l), l->single_token_image(),
            [l](const StateVec& s) { return static_cast<double>(l->image_token_count(s)); },
            std::move(base));
}

void add_btr(Fleet& fleet, int n) {
  auto l = std::make_shared<ring::BtrLayout>(n);
  // BTR alone is fault-intolerant; the W2-over-W1 wrapped composition
  // (the Thm 6 semantics) is the stabilizing family member.
  System wrapped =
      box_priority(box(ring::make_btr(*l), ring::make_w1(*l)), ring::make_w2(*l));
  StateVec base(l->space()->var_count(), 0);
  base[l->ut(1)] = 1;  // canonical single-token state
  fleet.add("btr+w1w2", std::move(wrapped), l->single_token(),
            [l](const StateVec& s) { return static_cast<double>(l->token_count(s)); },
            std::move(base));
}

void add_workring(Fleet& fleet, int n, int k, int m) {
  auto l = std::make_shared<ring::WorkRingLayout>(n, k, m);
  StateVec base(l->space()->var_count(), 0);
  fleet.add("workring", ring::make_work_ring(*l),
            [l](const StateVec& s) { return l->image_token_count(s) == 1; },
            [l](const StateVec& s) { return static_cast<double>(l->image_token_count(s)); },
            std::move(base));
}

struct CellRow {
  std::string system, environment, daemon;
  const sim::CampaignAggregate* agg;
};

struct ThresholdRow {
  double rate;
  std::uint64_t runs, converged, capped, faults;
  double conv_rate, mean_steps;
  std::uint64_t p99;
};

void write_json(const char* path, std::uint64_t seed, std::uint64_t total_runs,
                std::size_t par_threads, bool identical, double par_ms, double serial_ms,
                const std::vector<CellRow>& cells, const std::vector<ThresholdRow>& curve) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E22 fault-environment campaigns\",\n  \"seed\": " << seed
      << ",\n  \"hardware_threads\": " << resolve_thread_count()
      << ",\n  \"sweep_total_runs\": " << total_runs
      << ",\n  \"sweep_threads\": " << par_threads
      << ",\n  \"sweep_identical\": " << (identical ? "true" : "false")
      << ",\n  \"sweep_parallel_ms\": " << par_ms
      << ",\n  \"sweep_serial_ms\": " << serial_ms << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const sim::CampaignAggregate& a = *cells[i].agg;
    out << "    {\"system\": \"" << cells[i].system << "\", \"environment\": \""
        << cells[i].environment << "\", \"daemon\": \"" << cells[i].daemon
        << "\", \"runs\": " << a.runs << ", \"converged\": " << a.converged
        << ", \"deadlocked\": " << a.deadlocked << ", \"capped\": " << a.capped
        << ", \"mean_steps\": " << a.mean_steps() << ", \"p50\": " << a.quantile_steps(0.5)
        << ", \"p99\": " << a.quantile_steps(0.99) << ", \"faults\": " << a.faults
        << ", \"crashes\": " << a.crashes << ", \"restarts\": " << a.restarts << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"threshold_curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const ThresholdRow& r = curve[i];
    out << "    {\"rate\": " << r.rate << ", \"runs\": " << r.runs
        << ", \"converged\": " << r.converged << ", \"capped\": " << r.capped
        << ", \"conv_rate\": " << r.conv_rate << ", \"mean_steps\": " << r.mean_steps
        << ", \"p99\": " << r.p99 << ", \"faults\": " << r.faults << "}"
        << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"smoke"});
  const bool smoke = cli.has("smoke");
  bench::header("E22", "batched fault-environment campaigns (sweep + corruption threshold)");
  const std::uint64_t seed = bench::seed_from_cli(cli);

  // ---- Leg 1: the full sweep, parallel vs serial ----
  const int n = 6;
  Fleet fleet;
  add_kstate(fleet, n);
  add_btr(fleet, n);
  add_workring(fleet, n, n + 1, 4);

  sim::CampaignSpec spec;
  spec.systems = fleet.entries;
  spec.environments = {sim::EnvironmentSpec::scramble(), sim::EnvironmentSpec::burst_of(2),
                       sim::EnvironmentSpec::corruption(0.003),
                       sim::EnvironmentSpec::corruption(0.03),
                       sim::EnvironmentSpec::crash_restart(0.02, 0.1)};
  spec.daemons = {sim::DaemonSpec::random(), sim::DaemonSpec::round_robin(),
                  sim::DaemonSpec::greedy_adversary()};
  // 45 cells x 22300 runs = 1,003,500 runs in full mode.
  spec.runs_per_cell = smoke ? 40 : 22300;
  spec.base_seed = seed;
  spec.max_steps = 2000;

  const std::size_t par_threads = cli.get_size("threads", smoke ? 2 : 8);
  std::printf("sweep: %zu cells x %zu runs = %zu runs, threads %zu vs 1\n", spec.cells(),
              spec.runs_per_cell, spec.total_runs(), par_threads);

  bench::Timer tp;
  const sim::CampaignResult par =
      sim::CampaignDriver(EngineOptions{par_threads, /*chunk_size=*/0}).run(spec);
  const double par_ms = tp.ms();
  bench::Timer ts;
  const sim::CampaignResult serial =
      sim::CampaignDriver(EngineOptions{/*num_threads=*/1, /*chunk_size=*/0}).run(spec);
  const double serial_ms = ts.ms();
  const bool identical = par == serial;

  std::printf("%s", sim::format_campaign(spec, par).c_str());
  std::printf("sweep timing: %.0f ms at %zu threads, %.0f ms serial (%.2fx); identical: %s\n\n",
              par_ms, par_threads, serial_ms, par_ms > 0 ? serial_ms / par_ms : 0.0,
              identical ? "yes" : "NO");

  std::vector<CellRow> cell_rows;
  for (const sim::CampaignCell& c : par.cells)
    cell_rows.push_back({spec.systems[c.system].name, spec.environments[c.environment].name,
                         spec.daemons[c.daemon].name(), &c.agg});

  // ---- Leg 2: corruption-rate threshold for the K-state ring ----
  // One fault environment per per-round corruption rate, fixed round
  // budget, on a larger ring (fault-free T_conv ~ 25 steps at n=12).
  // The knee where convergence collapses sits where rate x T_conv ~ 1:
  // through rate 0.1 the ring absorbs faults with mildly inflated step
  // counts; past 0.3 repair can no longer outrun injection and the
  // convergence rate falls off a cliff.
  const int curve_n = 12;
  const std::vector<double> rates = smoke ? std::vector<double>{0.0, 1e-1, 1.0}
                                          : std::vector<double>{0.0, 3e-4, 1e-3, 3e-3, 1e-2,
                                                                3e-2, 1e-1, 3e-1, 6e-1, 1.0};
  Fleet kfleet;
  add_kstate(kfleet, curve_n);
  sim::CampaignSpec curve_spec;
  curve_spec.systems = kfleet.entries;
  for (double r : rates)
    curve_spec.environments.push_back(r == 0.0 ? sim::EnvironmentSpec::scramble()
                                               : sim::EnvironmentSpec::corruption(r));
  curve_spec.daemons = {sim::DaemonSpec::random()};
  curve_spec.runs_per_cell = smoke ? 100 : 20000;
  curve_spec.base_seed = seed;
  curve_spec.max_steps = 150;  // budget ~ 6x fault-free T_conv: exposes the knee

  const sim::CampaignResult curve_res =
      sim::CampaignDriver(EngineOptions{par_threads, /*chunk_size=*/0}).run(curve_spec);

  std::vector<ThresholdRow> curve;
  util::Table ct({"rate/step", "runs", "conv%", "mean steps", "p99", "capped", "faults"});
  for (std::size_t i = 0; i < curve_res.cells.size(); ++i) {
    const sim::CampaignAggregate& a = curve_res.cells[i].agg;
    curve.push_back({rates[i], a.runs, a.converged, a.capped, a.faults,
                     a.convergence_rate(), a.mean_steps(), a.quantile_steps(0.99)});
    char rate[24];
    std::snprintf(rate, sizeof(rate), "%g", rates[i]);
    ct.add_row({rate, std::to_string(a.runs),
                util::format_double(100.0 * a.convergence_rate(), 1),
                util::format_double(a.mean_steps(), 1), std::to_string(a.quantile_steps(0.99)),
                std::to_string(a.capped), std::to_string(a.faults)});
  }
  std::printf("corruption-rate threshold, kstate n=%d, budget %zu rounds:\n%s\n", curve_n,
              curve_spec.max_steps, ct.to_string().c_str());

  write_json("BENCH_campaign.json", seed, spec.total_runs(), par_threads, identical, par_ms,
             serial_ms, cell_rows, curve);
  std::printf("wrote BENCH_campaign.json\n");
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: parallel and serial sweeps produced different aggregates\n");
    return 1;
  }
  return 0;
}
