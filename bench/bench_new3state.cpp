// E9 — Section 6: the paper's NEW 3-state system C3. Lemma 12 under
// both initial-state choices, Theorem 13 under both composition
// semantics, and the aggressive-W2' equality with Dijkstra's 3-state.

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "refinement/equivalence.hpp"
#include "ring/btr.hpp"
#include "ring/three_state.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

int main() {
  header("E9", "Section 6: the new 3-state system C3");

  util::Table t({"n", "Lemma12 [C3 <~ BTR]", "C3 compressed edges", "T13 union",
                 "T13 prio W1''", "T13 prio W1'", "aggressive==D3"});
  for (int n = 2; n <= 6; ++n) {
    BtrLayout bl(n);
    ThreeStateLayout l(n);
    System btr = make_btr(bl);
    Abstraction a3 = make_alpha3(l, bl);
    System c3 = make_c3(l);
    System w1pp = make_w1_dprime(l);
    System w1p = make_w1_prime3(l);
    System w2p = make_w2_prime3(l);

    System c3f = with_reachable_initial(c3, l.canonical_state());
    RefinementChecker rc12(c3f, btr, a3);
    auto stab = [&](const System& sys) {
      return verdict(RefinementChecker(sys, btr, a3).stabilizing_to());
    };
    auto cmp = compare_relations(TransitionGraph::build(make_c3_aggressive(l)),
                                 TransitionGraph::build(make_dijkstra3(l)));
    t.add_row({std::to_string(n), verdict(rc12.convergence_refinement()),
               std::to_string(rc12.edge_stats().compressed),
               stab(box(c3, w1pp, w2p)),
               stab(box_priority(c3, box(w1pp, w2p))),
               stab(box_priority(c3, box(w1p, w2p))), cmp.verdict()});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The crossing step that falsifies "C3 performs no compression".
  ThreeStateLayout l(2);
  StateVec s{1, 0, 1};  // ut_1 and dt_1 coexist at process 1
  System c3 = make_c3(l);
  StateVec after = s;
  c3.actions()[2].effect(after);  // "up1"
  std::printf("the crossing step (n=2): c=(1,0,1) holds ut1 AND dt1; firing\n"
              "up1 gives c=(%d,%d,%d), whose image holds ut2 AND dt0 — both\n"
              "tokens crossed process 1 in ONE transition, compressing the\n"
              "two-step BTR crossing. Lemma 12's \"no compression\" claim\n"
              "misses this coexistence case, and since crossings can recur\n"
              "forever, [C3 <~ BTR] fails as stated.\n",
              after[0], after[1], after[2]);
  std::printf(
      "\nTheorem 13 itself HOLDS under priority composition at every tested\n"
      "size — with either wrapper localization. C3's opposite-neighbor reads\n"
      "freeze corrupted configurations (tau-steps) instead of circulating\n"
      "them, which is why it tolerates even the W1'' flaw that breaks C2 (E7).\n");
  return 0;
}
