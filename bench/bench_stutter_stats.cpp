// E10 — Section 6's stuttering (tau-step) diagram, measured: in how many
// states does C3 have an enabled action whose execution does not change
// the state? (Such executions are not transitions — the paper's tau
// steps.) C2 by contrast never idles: its moves always write a fresh
// value. Includes the paper's concrete diagram state.

#include <cstdio>

#include "common.hpp"
#include "ring/three_state.hpp"
#include "util/table.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

namespace {

// Counts (states with >= 1 enabled no-op action, total enabled no-op
// action instances) over the whole space.
std::pair<std::size_t, std::size_t> tau_stats(const System& sys) {
  const Space& space = sys.space();
  std::size_t states_with_tau = 0, tau_instances = 0;
  StateVec v, w;
  for (StateId id = 0; id < space.size(); ++id) {
    space.decode_into(id, v);
    bool any = false;
    for (const Action& a : sys.actions()) {
      if (!a.guard(v)) continue;
      w = v;
      a.effect(w);
      if (w == v) {
        ++tau_instances;
        any = true;
      }
    }
    states_with_tau += any;
  }
  return {states_with_tau, tau_instances};
}

}  // namespace

int main() {
  header("E10", "Section 6: C3's tau-steps (stuttering) vs C2");

  util::Table t({"n", "|Sigma|", "C3 states w/ tau", "C3 tau instances",
                 "C2 states w/ tau", "C3 transitions", "C2 transitions"});
  for (int n = 2; n <= 6; ++n) {
    ThreeStateLayout l(n);
    System c3 = make_c3(l);
    System c2 = make_c2(l);
    auto [c3_states, c3_taus] = tau_stats(c3);
    auto [c2_states, c2_taus] = tau_stats(c2);
    (void)c2_taus;
    t.add_row({std::to_string(n), std::to_string(l.space()->size()),
               std::to_string(c3_states), std::to_string(c3_taus),
               std::to_string(c2_states),
               std::to_string(TransitionGraph::build(c3).num_edges()),
               std::to_string(TransitionGraph::build(c2).num_edges())});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The paper's diagram: c = (0, 2, 1) (drawn as 3,2,1 with 3 == 0 mod 3):
  // process 1 holds ut1; firing up1 assigns c1 := c2 (+) 1 == 2 — a no-op.
  ThreeStateLayout l(2);
  System c3 = make_c3(l);
  StateVec s{0, 2, 1};
  StateVec after = s;
  const Action& up1 = c3.actions()[2];
  bool enabled = up1.guard(s);
  up1.effect(after);
  std::printf("paper's diagram state c=(0,2,1): up1 enabled=%s; firing it gives\n"
              "c=(%d,%d,%d) — %s, exactly the tau-step drawn in Section 6.\n",
              yesno(enabled).c_str(), after[0], after[1], after[2],
              after == s ? "UNCHANGED" : "changed");
  std::printf("\nC2 never stutters (its moves always copy a differing value);\n"
              "C3 trades compression for stuttering — except on token\n"
              "crossings, where it still compresses (see E9).\n");
  return 0;
}
