// E16 — the meta-theorems themselves, tested on thousands of random
// (C, A, W) triples: whenever the checkers certify a theorem's premises,
// its conclusion is re-checked independently. Theorems 0 and 1 hold on
// every instance; Theorem 3 (graybox wrapping) has COUNTEREXAMPLES —
// the wrapper can route the composite back into states from which C
// compresses (see tests/refinement/property_test.cpp for a minimal one).

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "refinement/random_systems.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::bench;

int main(int argc, char** argv) {
  header("E16", "meta-theorems on random automata");
  util::Cli cli(argc, argv);
  const std::uint64_t base_seed = seed_from_cli(cli, 0);

  const std::uint64_t trials = 4000;
  std::size_t hier_premises = 0, hier_ok = 0;
  std::size_t t0_premises = 0, t0_ok = 0;
  std::size_t t1_premises = 0, t1_ok = 0;
  std::size_t t3_premises = 0, t3_ok = 0, t3_cex = 0;
  std::size_t l4_premises = 0, l4_ok = 0;
  bool printed_cex = false;

  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + trial;
    SystemSampler gen(seed);
    StateId n = 4 + static_cast<StateId>(trial % 5);
    TransitionGraph a = gen.random_graph(n, 0.30);
    TransitionGraph c = gen.drop_edges(a, 0.85);
    if (trial % 2 == 0) c = gen.add_shortcuts(c, 2);
    TransitionGraph w = gen.random_graph(n, 0.10);
    TransitionGraph b = gen.random_graph(n, 0.30);
    std::vector<StateId> init = gen.random_subset(n, 0.3, true);
    std::vector<StateId> b_init = gen.random_subset(n, 0.3, true);

    RefinementChecker ca(c, a, init, init);
    bool everywhere = ca.everywhere_refinement().holds;
    bool convergence = ca.convergence_refinement().holds;
    if (everywhere) {
      ++hier_premises;
      hier_ok += convergence && ca.everywhere_eventually_refinement().holds;
    }

    RefinementChecker ab(a, b, init, b_init);
    bool a_stab_b = ab.stabilizing_to().holds;
    if (a_stab_b) {
      RefinementChecker cb(c, b, init, b_init);
      bool c_stab_b = cb.stabilizing_to().holds;
      if (everywhere) {
        ++t0_premises;
        t0_ok += c_stab_b;
      }
      if (convergence) {
        ++t1_premises;
        t1_ok += c_stab_b;
      }
    }

    // Lemma 4: [W' <~ W] and (A [] W) stabilizing to A implies
    // (A [] W') stabilizing to A. W' is a random edge subset of W.
    {
      SystemSampler wgen(seed + 1'000'000);
      TransitionGraph wp = wgen.drop_edges(w, 0.7);
      RefinementChecker wpw(wp, w, {}, {});
      RefinementChecker awa(graph_union(a, w), a, init, init);
      if (wpw.convergence_refinement().holds && awa.stabilizing_to().holds) {
        ++l4_premises;
        RefinementChecker awpa(graph_union(a, wp), a, init, init);
        l4_ok += awpa.stabilizing_to().holds;
      }
    }

    if (convergence) {
      TransitionGraph aw = graph_union(a, w);
      RefinementChecker awa(std::move(aw), a, init, init);
      if (awa.stabilizing_to().holds) {
        ++t3_premises;
        TransitionGraph cw = graph_union(c, w);
        RefinementChecker cwa(std::move(cw), a, init, init);
        auto r = cwa.stabilizing_to();
        if (r.holds) {
          ++t3_ok;
        } else {
          ++t3_cex;
          if (!printed_cex) {
            printed_cex = true;
            std::printf("first random Theorem-3 counterexample: seed %llu, "
                        "witness %s\n\n",
                        static_cast<unsigned long long>(seed),
                        r.witness.format_ids().c_str());
          }
        }
      }
    }
  }

  // Structured adversarial family for Theorem 3 (the random sweep rarely
  // hits the needed shape): A is an m-cycle 0..m-1 plus a pendant state
  // p = m with A-edges 0->p and p->1; C drops 0->p (p becomes unreachable
  // from the initial state 0) and compresses p's exit to p->2; the
  // wrapper W restores exactly the A-edge 0->p. Every instance satisfies
  // both premises and violates the conclusion: (C [] W) cycles
  // 0 -> p -> 2 -> ... -> 0 through the compression forever.
  std::size_t fam_premises = 0, fam_cex = 0;
  for (StateId m = 3; m <= 12; ++m) {
    std::vector<std::pair<StateId, StateId>> ae, ce;
    for (StateId i = 0; i < m; ++i) ae.emplace_back(i, (i + 1) % m);
    ce = ae;
    ae.emplace_back(0, m);
    ae.emplace_back(m, 1);
    ce.emplace_back(m, 2);
    TransitionGraph a = TransitionGraph::from_edges(m + 1, ae);
    TransitionGraph c = TransitionGraph::from_edges(m + 1, ce);
    TransitionGraph w = TransitionGraph::from_edges(m + 1, {{0, m}});
    RefinementChecker ca(c, a, {0}, {0});
    RefinementChecker awa(graph_union(a, w), a, {0}, {0});
    if (!ca.convergence_refinement().holds || !awa.stabilizing_to().holds) continue;
    ++fam_premises;
    RefinementChecker cwa(graph_union(c, w), a, {0}, {0});
    fam_cex += !cwa.stabilizing_to().holds;
  }

  // Deterministic Lemma 4 counterexample (3 states — see
  // tests/refinement/property_test.cpp for the construction).
  std::size_t l4d_premises = 0, l4d_cex = 0;
  {
    TransitionGraph a = TransitionGraph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
    TransitionGraph w = TransitionGraph::from_edges(3, {{0, 1}, {1, 2}});
    TransitionGraph wp = TransitionGraph::from_edges(3, {{0, 2}, {1, 2}});
    RefinementChecker wpw(wp, w, {}, {});
    RefinementChecker awa(graph_union(a, w), a, {0}, {0});
    if (wpw.convergence_refinement().holds && awa.stabilizing_to().holds) {
      ++l4d_premises;
      RefinementChecker awpa(graph_union(a, wp), a, {0}, {0});
      l4d_cex += !awpa.stabilizing_to().holds;
    }
  }

  util::Table t({"theorem", "premises held", "conclusion held", "counterexamples"});
  t.add_row({"hierarchy [C(=A] => [C<~A] => ee", std::to_string(hier_premises),
             std::to_string(hier_ok), std::to_string(hier_premises - hier_ok)});
  t.add_row({"Theorem 0 (everywhere preserves stab)", std::to_string(t0_premises),
             std::to_string(t0_ok), std::to_string(t0_premises - t0_ok)});
  t.add_row({"Theorem 1 (convergence preserves stab)", std::to_string(t1_premises),
             std::to_string(t1_ok), std::to_string(t1_premises - t1_ok)});
  t.add_row({"Lemma 4 (wrapper refinement), random", std::to_string(l4_premises),
             std::to_string(l4_ok), std::to_string(l4_premises - l4_ok)});
  t.add_row({"Lemma 4, 3-state counterexample", std::to_string(l4d_premises),
             std::to_string(l4d_premises - l4d_cex), std::to_string(l4d_cex)});
  t.add_row({"Theorem 3 (graybox wrapping), random", std::to_string(t3_premises),
             std::to_string(t3_ok), std::to_string(t3_cex)});
  t.add_row({"Theorem 3, adversarial family m=3..12", std::to_string(fam_premises),
             std::to_string(fam_premises - fam_cex), std::to_string(fam_cex)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("%llu random instances, 4..8 states each. Theorems 0/1 must show 0\n"
              "counterexamples (they are sound; a nonzero count means an engine\n"
              "bug). Theorems 3 and 5's Lemma 4 are NOT sound as stated: the\n"
              "adversarial instances satisfy the premises yet the composite\n"
              "loops through a compression forever. The shared gap: a\n"
              "convergence refinement's compressions are only guaranteed\n"
              "transient within that SYSTEM's own reach — the other composed\n"
              "component can route the composite back into them. E16.\n",
              static_cast<unsigned long long>(trials));
  return 0;
}
