// E5 — the full Section 4 derivation of Dijkstra's 4-state ring:
// BTR4's fidelity to BTR, the vacuity of W1'/W2', Lemma 7 under both
// initial-state choices, Theorem 8, Dijkstra-4's stabilization, and the
// guard-relaxation relation (C1 [] W1' [] W2') (= Dijkstra4.

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "refinement/equivalence.hpp"
#include "ring/btr.hpp"
#include "ring/four_state.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

int main() {
  header("E5", "Section 4: deriving Dijkstra's 4-state token ring");

  util::Table t({"n", "[BTR4 <~ BTR]", "W1'/W2' edges", "Lemma7 (preimage I)",
                 "Lemma7 (faithful I)", "Thm8 C1W stab", "D4 stab", "C1W vs D4"});
  for (int n = 2; n <= 6; ++n) {
    BtrLayout bl(n);
    FourStateLayout l(n);
    System btr = make_btr(bl);
    Abstraction a4 = make_alpha4(l, bl);

    std::string btr4_v = verdict(
        RefinementChecker(make_btr4(l), btr, a4).convergence_refinement());

    std::size_t wedges = TransitionGraph::build(make_w1_prime(l)).num_edges() +
                         TransitionGraph::build(make_w2_prime(l)).num_edges();

    std::string lemma7_pre = verdict(
        RefinementChecker(make_c1(l), btr, a4).convergence_refinement());
    System c1_faithful = with_reachable_initial(make_c1(l), l.canonical_state());
    std::string lemma7_faith =
        verdict(RefinementChecker(c1_faithful, btr, a4).convergence_refinement());

    System c1w = box(make_c1(l), make_w1_prime(l), make_w2_prime(l));
    std::string thm8 = verdict(RefinementChecker(c1w, btr, a4).stabilizing_to());
    std::string d4 =
        verdict(RefinementChecker(make_dijkstra4(l), btr, a4).stabilizing_to());
    auto cmp = compare_relations(TransitionGraph::build(c1w),
                                 TransitionGraph::build(make_dijkstra4(l)));

    t.add_row({std::to_string(n), btr4_v, std::to_string(wedges), lemma7_pre,
               lemma7_faith, thm8, d4, cmp.verdict()});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "paper expectations: [BTR4 <~ BTR] holds; the refined wrappers are\n"
      "vacuous (0 transitions); Lemma 7 holds; Theorem 8 holds; Dijkstra's\n"
      "4-state system is its guard relaxation (strict superset of C1W's\n"
      "transitions) and stabilizes.\n"
      "measured deviation: Lemma 7 needs the faithful (reachable-closure)\n"
      "initial states — the raw preimage of BTR's initial states contains\n"
      "corrupted encodings whose first move already compresses (E5).\n");
  return 0;
}
