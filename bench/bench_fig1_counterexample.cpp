// E1 — Figure 1 of the paper: refinement alone does not preserve
// stabilization. Reconstructs the figure's two automata (the infinite
// chain folded into a cycle), checks every relation between them, and
// prints the witness computation showing C stuck at s*.

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"

using namespace cref;
using namespace cref::bench;

namespace {
const char* kNames[] = {"s0", "s1", "s2", "s3", "s*"};

std::string name_trace(const Trace& t) {
  std::string out;
  for (std::size_t i = 0; i < t.states.size(); ++i) {
    if (i) out += " -> ";
    out += kNames[t.states[i]];
  }
  return out;
}
}  // namespace

int main() {
  header("E1", "Figure 1: [C (= A]_init does not preserve stabilization");

  // A: s0 -> s1 -> s2 -> s3 -> s1 (folded infinite chain), s* -> s2.
  // C: the same minus the recovery edge s* -> s2.
  TransitionGraph a =
      TransitionGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 1}, {4, 2}});
  TransitionGraph c = TransitionGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 1}});

  RefinementChecker ca(c, a, {0}, {0});
  RefinementChecker aa(a, a, {0}, {0});

  util::Table t({"relation / property", "paper", "measured"});
  t.add_row({"[C (= A]_init", "holds", verdict(ca.refinement_init())});
  t.add_row({"A stabilizing to A", "holds", verdict(aa.stabilizing_to())});
  t.add_row({"C stabilizing to A", "FAILS", verdict(ca.stabilizing_to())});
  t.add_row({"[C (= A] (everywhere)", "FAILS", verdict(ca.everywhere_refinement())});
  t.add_row({"[C <~ A] (convergence)", "FAILS", verdict(ca.convergence_refinement())});
  std::printf("%s\n", t.to_string().c_str());

  auto r = ca.stabilizing_to();
  if (!r.holds) {
    std::printf("why C fails: %s\n", r.reason.c_str());
    std::printf("witness: the fault F lands C in %s, where it is stuck forever\n",
                name_trace(r.witness).c_str());
  }
  std::printf("\nconclusion: Theorem 1's premise must be the stronger [C <~ A];\n"
              "the checker confirms [C <~ A] fails exactly because C's final\n"
              "state s* is not final in A.\n");
  return 0;
}
