// E7 — the full Section 5 derivation of Dijkstra's 3-state ring:
// Lemma 9 (wrapped abstract system), Lemma 10 (wrapped refinement),
// Theorem 11, the merged-system equality with Dijkstra's 3-state, and
// Dijkstra-3's own stabilization — across sizes, composition semantics,
// and both wrapper localizations (global W1' vs local W1'').

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "refinement/equivalence.hpp"
#include "ring/btr.hpp"
#include "ring/three_state.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

int main() {
  header("E7", "Section 5: deriving Dijkstra's 3-state token ring");

  util::Table t({"n", "L9 union W1''", "L9 prio W1''", "L9 prio W1'",
                 "T11 union", "T11 prio W1''", "T11 prio W1'", "merged==D3", "D3 stab"});
  for (int n = 2; n <= 6; ++n) {
    BtrLayout bl(n);
    ThreeStateLayout l(n);
    System btr = make_btr(bl);
    Abstraction a3 = make_alpha3(l, bl);
    System btr3 = make_btr3(l);
    System c2 = make_c2(l);
    System w1pp = make_w1_dprime(l);
    System w1p = make_w1_prime3(l);
    System w2p = make_w2_prime3(l);
    auto stab = [&](const System& sys) {
      return verdict(RefinementChecker(sys, btr, a3).stabilizing_to());
    };
    auto cmp = compare_relations(TransitionGraph::build(make_c2_merged(l)),
                                 TransitionGraph::build(make_dijkstra3(l)));
    t.add_row({std::to_string(n),
               stab(box(btr3, w1pp, w2p)),
               stab(box_priority(btr3, box(w1pp, w2p))),
               stab(box_priority(btr3, box(w1p, w2p))),
               stab(box(c2, w1pp, w2p)),
               stab(box_priority(c2, box(w1pp, w2p))),
               stab(box_priority(c2, box(w1p, w2p))),
               cmp.verdict(), stab(make_dijkstra3(l))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Lemma 10 verdicts with faithful initial states.
  util::Table t10({"n", "[C2[]W'' <~ BTR3[]W''] (Lemma 10)", "edge classes (ex/st/co/in)"});
  for (int n = 2; n <= 5; ++n) {
    ThreeStateLayout l(n);
    System c2w = with_reachable_initial(
        box(make_c2(l), make_w1_dprime(l), make_w2_prime3(l)), l.canonical_state());
    System btr3w = box(make_btr3(l), make_w1_dprime(l), make_w2_prime3(l));
    RefinementChecker rc(c2w, btr3w);
    auto st = rc.edge_stats();
    t10.add_row({std::to_string(n), verdict(rc.convergence_refinement()),
                 std::to_string(st.exact) + "/" + std::to_string(st.stutter) + "/" +
                     std::to_string(st.compressed) + "/" + std::to_string(st.invalid)});
  }
  std::printf("%s\n", t10.to_string().c_str());

  // The witness cycle behind the W1'' failures at n = 4.
  {
    int n = 4;
    ThreeStateLayout l(n);
    BtrLayout bl(n);
    System wrapped =
        box_priority(make_btr3(l), box(make_w1_dprime(l), make_w2_prime3(l)));
    auto r = RefinementChecker(wrapped, make_btr(bl), make_alpha3(l, bl)).stabilizing_to();
    if (!r.holds) {
      std::printf("W1'' interference witness at n=4 (counter view):\n%s",
                  r.witness.format(*l.space()).c_str());
      std::printf("three same-direction tokens keep W2' disabled while W1''\n"
                  "keeps injecting a fourth — the paper's non-interference\n"
                  "argument (Section 5.1) fails from n = 4 on. EXPERIMENTS.md E7.\n");
    }
  }
  std::printf(
      "\nsummary: the headline equality (merged system == Dijkstra's 3-state)\n"
      "and D3's stabilization hold at every size; the intermediate\n"
      "compositional claims (Lemmas 9/10, Theorem 11 as a plain union with\n"
      "the LOCAL wrapper W1'') hold only for n <= 3; the GLOBAL wrapper W1'\n"
      "under priority composition makes the whole chain sound.\n");
  return 0;
}
