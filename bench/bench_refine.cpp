// E24: static convergence-refinement proofs vs on-the-fly exploration.
//
// Prices the static refinement prover (src/prover/refine.hpp) against
// the explicit engines on [C curlypreceq A] instances: per-action
// simulation obligations plus independent certificate validation on
// one side, the materialized RefinementChecker and the lazy
// OnTheFlyChecker on the other. The headline is the work ring (each
// process takes m - 1 work steps under its privilege before passing
// it): at n = 5, m = 8 its 1.024e8 states are far past any graph
// budget, yet the certificate is synthesized and mode-B validated from
// the ASTs alone — the on-the-fly engine then walks the full space to
// confirm what the certificate already proved.
//
// Families:
//   kstate    Dijkstra's K-state ring vs the abstract UTR through the
//             privilege map — compressed (privilege-merging) rows, a
//             visible ranking, and the token-count invariant.
//   workring  the work ring vs the K-state ring through the by-name
//             projection — symbolic stutter ranking + deadlock pairs;
//             carries the 1.024e8-state acceptance instance.
//   wrapper   W2' (deterministic cancel) vs W2 (permissive cancel) —
//             every action Exact.
//   negative  forgetting work against a non-ring — the prover must
//             refute and both explicit engines must agree.
//
//   ./bench_refine [--smoke]
//
// Results go to BENCH_refine.json. Exit 1 if any certificate fails the
// independent validator or any decided verdict disagrees with an
// explicit engine (soundness, not speed).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/abstraction.hpp"
#include "core/system.hpp"
#include "gcl/alpha.hpp"
#include "gcl/compile.hpp"
#include "gcl/parser.hpp"
#include "prover/ground_truth.hpp"
#include "prover/refine.hpp"
#include "refinement/onthefly.hpp"
#include "util/table.hpp"

using namespace cref;

namespace {

/// Dijkstra's K-state token ring over processes 0..n-1, all-zeros init.
std::string kstate_gcl(int k, int n) {
  auto c = [](int j) { return "c" + std::to_string(j); };
  std::string src = "system kstate_n" + std::to_string(n) + " {\n";
  for (int j = 0; j < n; ++j)
    src += "  var " + c(j) + " : 0.." + std::to_string(k - 1) + ";\n";
  src += "  action bottom @0 : " + c(0) + " == " + c(n - 1) + " -> " + c(0) +
         " := (" + c(0) + " + 1) % " + std::to_string(k) + ";\n";
  for (int j = 1; j < n; ++j)
    src += "  action up" + std::to_string(j) + " @" + std::to_string(j) + " : " +
           c(j) + " != " + c(j - 1) + " -> " + c(j) + " := " + c(j - 1) + ";\n";
  src += "  init : " + c(0) + " == 0";
  for (int j = 1; j < n; ++j) src += " && " + c(j) + " == 0";
  src += ";\n}\n";
  return src;
}

/// The UTR over n token slots: passing into an occupied slot merges.
std::string utr_gcl(int n) {
  auto t = [](int j) { return "t" + std::to_string(j); };
  std::string src = "system utr_n" + std::to_string(n) + " {\n";
  for (int j = 0; j < n; ++j) src += "  var " + t(j) + " : bool;\n";
  for (int j = 0; j < n; ++j)
    src += "  action pass" + std::to_string(j) + " : " + t(j) + " != 0 -> " +
           t(j) + " := 0, " + t((j + 1) % n) + " := 1;\n";
  src += "  init : " + t(0) + " == 1";
  for (int j = 1; j < n; ++j) src += " && " + t(j) + " == 0";
  src += ";\n}\n";
  return src;
}

/// The privilege image of the K-state ring onto the UTR, with the
/// one-privilege invariant that excludes the merging rows from reach.
std::string kstate_alpha(int n) {
  auto c = [](int j) { return "c" + std::to_string(j); };
  std::string src = "alpha kstate_privilege {\n";
  src += "  t0 := " + c(0) + " == " + c(n - 1) + ";\n";
  for (int j = 1; j < n; ++j)
    src += "  t" + std::to_string(j) + " := " + c(j) + " != " + c(j - 1) + ";\n";
  src += "  invariant : (" + c(0) + " == " + c(n - 1) + ")";
  for (int j = 1; j < n; ++j)
    src += " + (" + c(j) + " != " + c(j - 1) + ")";
  src += " == 1;\n}\n";
  return src;
}

/// The K-state ring with local work: m - 1 work steps per privilege
/// before passing, |Sigma| = (k * m)^n.
std::string work_ring_gcl(int k, int n, int m) {
  auto c = [](int j) { return "c" + std::to_string(j); };
  auto w = [](int j) { return "w" + std::to_string(j); };
  const std::string top = std::to_string(m - 1);
  std::string src = "system work_ring_n" + std::to_string(n) + " {\n";
  for (int j = 0; j < n; ++j)
    src += "  var " + c(j) + " : 0.." + std::to_string(k - 1) + ";\n";
  for (int j = 0; j < n; ++j)
    src += "  var " + w(j) + " : 0.." + top + ";\n";
  for (int j = 0; j < n; ++j) {
    const std::string priv =
        j == 0 ? c(0) + " == " + c(n - 1) : c(j) + " != " + c(j - 1);
    const std::string move =
        j == 0 ? c(0) + " := (" + c(0) + " + 1) % " + std::to_string(k)
               : c(j) + " := " + c(j - 1);
    src += "  action work" + std::to_string(j) + " @" + std::to_string(j) + " : " +
           priv + " && " + w(j) + " < " + top + " -> " + w(j) + " := " + w(j) +
           " + 1;\n";
    src += "  action pass" + std::to_string(j) + " @" + std::to_string(j) + " : " +
           priv + " && " + w(j) + " == " + top + " -> " + move + ", " + w(j) +
           " := 0;\n";
  }
  src += "  init : " + c(0) + " == 0";
  for (int j = 1; j < n; ++j) src += " && " + c(j) + " == 0";
  for (int j = 0; j < n; ++j) src += " && " + w(j) + " == 0";
  src += ";\n}\n";
  return src;
}

// The deterministic token-cancellation wrapper (W2: always cancel the
// second of two adjacent tokens) against the permissive one (either may
// go): every W2 action is Exact against its *1 counterpart, and the two
// deadlock on exactly the same token-free patterns.
const char* kW2Det = R"(
system w2_det {
  var t0 : bool;
  var t1 : bool;
  var t2 : bool;
  action cancel0 : t0 != 0 && t1 != 0 -> t1 := 0;
  action cancel1 : t1 != 0 && t2 != 0 -> t2 := 0;
  action cancel2 : t2 != 0 && t0 != 0 -> t0 := 0;
}
)";

const char* kW2Any = R"(
system w2_any {
  var t0 : bool;
  var t1 : bool;
  var t2 : bool;
  action cancel01 : t0 != 0 && t1 != 0 -> t1 := 0;
  action cancel00 : t0 != 0 && t1 != 0 -> t0 := 0;
  action cancel11 : t1 != 0 && t2 != 0 -> t2 := 0;
  action cancel10 : t1 != 0 && t2 != 0 -> t1 := 0;
  action cancel21 : t2 != 0 && t0 != 0 -> t0 := 0;
  action cancel20 : t2 != 0 && t0 != 0 -> t2 := 0;
}
)";

const char* kTwoRing = R"(
system two_ring {
  var x : 0..1;
  var y : 0..1;
  action flip0 : x == y -> x := (x + 1) % 2;
  action flip1 : x != y -> y := x;
}
)";

const char* kOneShot = R"(
system one_shot {
  var x : 0..1;
  var y : 0..1;
  action shoot : x == 0 && y == 0 -> x := 1;
}
)";

struct Row {
  std::string family;
  std::string config;
  std::size_t c_states = 0;
  std::string verdict;      // proved / refuted / unknown
  std::string expect;       // the verdict the family must produce
  bool validated = false;   // certificate survived the independent validator
  std::string mode;         // A (replay) / B (symbolic) / -
  bool sound = true;        // no decided-vs-explicit disagreement
  double static_ms = 0.0;   // synthesis + validation
  double onthefly_ms = 0.0; // lazy engine baseline (0 = not run)
  double explicit_ms = 0.0; // eager engine baseline (0 = not run)
};

std::size_t space_of(const gcl::SystemAst& ast) {
  std::size_t total = 1;
  for (const auto& v : ast.vars) total *= static_cast<std::size_t>(v.cardinality);
  return total;
}

const char* verdict_name(prover::RefineVerdict v) {
  switch (v) {
    case prover::RefineVerdict::Proved: return "proved";
    case prover::RefineVerdict::Refuted: return "refuted";
    case prover::RefineVerdict::Unknown: return "unknown";
  }
  return "?";
}

/// One refinement instance: prove + validate, then cross-check every
/// decided verdict against whichever explicit engines fit `cross`.
/// `cross` == 0 skips the eager leg; `onthefly` runs the lazy leg
/// regardless of size (the headline pays it on 1.024e8 states).
Row run_instance(const std::string& family, const std::string& config,
                 const gcl::SystemAst& c_ast, const gcl::SystemAst& a_ast,
                 const gcl::AlphaSpec& alpha, const char* expect,
                 std::size_t cross, bool onthefly) {
  Row row{family, config};
  row.expect = expect;
  row.c_states = space_of(c_ast);

  bench::Timer ts;
  const prover::RefineResult res = prover::prove_refinement(c_ast, a_ast, alpha);
  row.verdict = verdict_name(res.verdict);
  if (res.verdict == prover::RefineVerdict::Proved) {
    std::string why;
    row.validated = prover::validate_refinement_certificate(c_ast, a_ast, alpha,
                                                            *res.certificate, &why);
    if (!row.validated)
      std::fprintf(stderr, "%s: certificate rejected: %s\n", config.c_str(),
                   why.c_str());
    row.mode = row.c_states <= res.certificate->budget ? "A" : "B";
    if (!row.validated) row.sound = false;
  } else {
    row.mode = "-";
  }
  row.static_ms = ts.ms();

  bool claimed = res.verdict == prover::RefineVerdict::Proved;
  if (cross > 0) {
    bench::Timer te;
    const prover::RefineGroundTruth gt =
        prover::explicit_refinement(c_ast, a_ast, alpha, cross);
    row.explicit_ms = te.ms();
    if (gt.applicable) {
      row.onthefly_ms = row.explicit_ms;  // explicit_refinement runs both legs
      if (gt.holds != gt.onthefly_holds) row.sound = false;
      if (res.verdict != prover::RefineVerdict::Unknown && claimed != gt.holds)
        row.sound = false;
    }
  } else if (onthefly) {
    // Headline scale: only the lazy engine can walk the space.
    const System c = gcl::compile(c_ast);
    const System a = gcl::compile(a_ast);
    Abstraction::MapFn map = [&alpha, &a_ast](const StateVec& s, StateVec& out) {
      gcl::alpha_image(alpha, a_ast, s, out);
    };
    bench::Timer tl;
    OnTheFlyChecker ofc(c, a,
                        Abstraction::lazy("alpha", c.space_ptr(), a.space_ptr(), map));
    const bool holds = ofc.convergence_refinement().holds;
    row.onthefly_ms = tl.ms();
    if (res.verdict != prover::RefineVerdict::Unknown && claimed != holds)
      row.sound = false;
  }
  return row;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

void write_json(const char* path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E24 static-refinement\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"family\": \"" << r.family << "\", \"config\": \"" << r.config
        << "\", \"c_states\": " << r.c_states << ", \"verdict\": \"" << r.verdict
        << "\", \"validated\": " << (r.validated ? "true" : "false")
        << ", \"mode\": \"" << r.mode << "\", \"static_ms\": " << r.static_ms
        << ", \"onthefly_ms\": " << r.onthefly_ms
        << ", \"explicit_ms\": " << r.explicit_ms
        << ", \"sound\": " << (r.sound ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"smoke"});
  const bool smoke = cli.has("smoke");
  bench::header("E24", "static refinement certificates vs on-the-fly checking");

  std::vector<Row> rows;
  const std::size_t kCross = 1ull << 22;

  // kstate vs UTR through the privilege map: mode-A certificates with
  // compressed rows; both explicit engines confirm.
  for (int n : smoke ? std::vector<int>{4} : std::vector<int>{4, 5}) {
    const gcl::SystemAst c = gcl::parse(kstate_gcl(5, n));
    const gcl::SystemAst a = gcl::parse(utr_gcl(n));
    rows.push_back(run_instance("kstate", "K=5 n=" + std::to_string(n), c, a,
                                gcl::parse_alpha(kstate_alpha(n), c, a), "proved",
                                kCross, false));
  }

  // work ring vs kstate: mode-B certificates, Sigma grows (5m)^n. The
  // small shapes are explicitly confirmed; the full run adds the
  // 1.024e8-state acceptance instance with the on-the-fly baseline.
  struct Shape { int n, m; bool cross; };
  const std::vector<Shape> shapes =
      smoke ? std::vector<Shape>{{3, 2, true}, {5, 8, false}}
            : std::vector<Shape>{{3, 2, true}, {4, 4, true}, {5, 8, false}};
  for (const Shape& s : shapes) {
    const gcl::SystemAst c = gcl::parse(work_ring_gcl(5, s.n, s.m));
    const gcl::SystemAst a = gcl::parse(kstate_gcl(5, s.n));
    const bool headline = !s.cross && !smoke;  // walk 1.024e8 states
    rows.push_back(run_instance(
        "workring", "n=" + std::to_string(s.n) + " m=" + std::to_string(s.m), c, a,
        gcl::identity_alpha(c, a), "proved", s.cross ? kCross : 0, headline));
  }

  // wrapper: the deterministic cancel wrapper refines the permissive one.
  {
    const gcl::SystemAst c = gcl::parse(kW2Det);
    const gcl::SystemAst a = gcl::parse(kW2Any);
    rows.push_back(run_instance("wrapper", "w2' vs w2", c, a,
                                gcl::identity_alpha(c, a), "proved", kCross, false));
  }

  // negative: forgetting work against a non-ring must be refuted.
  {
    const gcl::SystemAst c = gcl::parse(kTwoRing);
    const gcl::SystemAst a = gcl::parse(kOneShot);
    rows.push_back(run_instance("negative", "two_ring vs one_shot", c, a,
                                gcl::identity_alpha(c, a), "refuted", kCross, false));
  }

  util::Table t({"family", "config", "|Sigma_C|", "verdict", "validated", "mode",
                 "static ms", "onthefly ms", "explicit ms", "sound"});
  bool all_sound = true;
  bool expectations_met = true;
  for (const Row& r : rows) {
    all_sound = all_sound && r.sound;
    expectations_met = expectations_met && r.verdict == r.expect;
    t.add_row({r.family, r.config, std::to_string(r.c_states), r.verdict,
               bench::yesno(r.validated), r.mode, fmt_ms(r.static_ms),
               fmt_ms(r.onthefly_ms), fmt_ms(r.explicit_ms),
               r.sound ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The acceptance instance: the 1.024e8-state work ring is certified
  // statically; in the full run the on-the-fly engine must confirm it.
  for (const Row& r : rows) {
    if (r.family == "workring" && r.config == "n=5 m=8") {
      const bool ok = r.verdict == "proved" && r.validated && r.mode == "B" && r.sound;
      std::printf("acceptance (work ring n=5 m=8, %zu states): static %.3f ms, "
                  "mode-%s validated%s -> %s\n",
                  r.c_states, r.static_ms, r.mode.c_str(),
                  r.onthefly_ms > 0
                      ? (" , on-the-fly confirmed in " + fmt_ms(r.onthefly_ms) + " ms").c_str()
                      : " (baseline skipped in --smoke)",
                  ok ? "PASS" : "FAIL");
    }
  }

  write_json("BENCH_refine.json", rows);
  std::printf("wrote BENCH_refine.json\n");
  if (!all_sound) {
    std::fprintf(stderr, "FAIL: a refinement verdict disagreed with an explicit "
                         "engine or failed validation (see table)\n");
    return 1;
  }
  if (!expectations_met) {
    std::fprintf(stderr, "FAIL: a family's expected verdict flipped (see table)\n");
    return 1;
  }
  return 0;
}
