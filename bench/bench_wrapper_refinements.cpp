// E8 — Section 5.1's wrapper-localization discussion, measured: which
// refinement relations hold between W1'' (local), W1' (global), and the
// vacuous 4-state wrappers; plus transition counts per wrapper.

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "ring/btr.hpp"
#include "ring/four_state.hpp"
#include "ring/three_state.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

int main() {
  header("E8", "Section 5.1: wrapper refinement relations (W1'' vs W1')");

  util::Table t({"n", "|T(W1')|", "|T(W1'')|", "[W1'' (= W1']", "[W1'' <~ W1']",
                 "[W1'' ee W1']", "[W1' (= W1'']"});
  for (int n = 2; n <= 6; ++n) {
    ThreeStateLayout l(n);
    System w1p = make_w1_prime3(l);
    System w1pp = make_w1_dprime(l);
    RefinementChecker fwd(w1pp, w1p);
    RefinementChecker bwd(w1p, w1pp);
    t.add_row({std::to_string(n),
               std::to_string(TransitionGraph::build(w1p).num_edges()),
               std::to_string(TransitionGraph::build(w1pp).num_edges()),
               verdict(fwd.everywhere_refinement()),
               verdict(fwd.convergence_refinement()),
               verdict(fwd.everywhere_eventually_refinement()),
               verdict(bwd.everywhere_refinement())});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "paper: \"W1'' is enabled in some states where the abstract W1 is\n"
      "not, and hence, is not an everywhere refinement\" — measured: it is\n"
      "not ANY of the refinements for n >= 3 (W1'' creates tokens W1' never\n"
      "would, from states W1' deadlocks in). At n = 2 the local guard\n"
      "coincides with the global one and all relations hold.\n\n");

  util::Table t4({"n", "W1' (4-state) edges", "W2' (4-state) edges", "W2' (3-state) edges"});
  for (int n = 2; n <= 6; ++n) {
    FourStateLayout l4(n);
    ThreeStateLayout l3(n);
    t4.add_row({std::to_string(n),
                std::to_string(TransitionGraph::build(make_w1_prime(l4)).num_edges()),
                std::to_string(TransitionGraph::build(make_w2_prime(l4)).num_edges()),
                std::to_string(TransitionGraph::build(make_w2_prime3(l3)).num_edges())});
  }
  std::printf("%s", t4.to_string().c_str());
  std::printf("(Section 4.1's claim that the 4-state refined wrappers are vacuous\n"
              " is confirmed: 0 transitions; the 3-state W2' is a real corrector.)\n");
  return 0;
}
