// E20: on-the-fly SCC-quotient refinement checking for huge Sigma.
//
// The derived instance is the work ring (src/ring/work_ring.hpp):
// Dijkstra's K-state counters plus a per-process work quota, related to
// K-state by the forget-work abstraction and to UTR by the composed
// privilege-image abstraction. Three legs:
//
//   parity    configs small enough for the explicit engine: both
//             engines run [WorkRing curlypreceq KState] and
//             stabilizing-to-UTR, and must agree on the FULL
//             CheckResult (verdict, reason, witness).
//   control   the looping-work variant: a reachable pure-stutter
//             cycle, so convergence must FAIL with a divergence
//             witness — identically in both engines.
//   headline  (full mode) WorkRing(n=4, K=5, m=8): 40^5 = 1.024e8
//             states, far past a materializable CSR. The on-the-fly
//             engine alone verifies the Theorem 1 chain (convergence
//             to K-state, stabilization to UTR through the composed
//             alpha) and the Theorem 3 leg (box with the work-skip
//             wrapper still converges), never holding more than a few
//             bytes per state.
//
//   ./bench_onthefly [--smoke] [--threads N] [--chunk N]
//
// Results go to BENCH_onthefly.json. Exit 1 if any parity pair
// disagrees or a headline/control check decides the wrong way.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "refinement/onthefly.hpp"
#include "ring/work_ring.hpp"

using namespace cref;
using namespace cref::ring;

namespace {

struct Row {
  std::string family;    // parity / control / headline
  std::string config;    // "n=4 K=5 m=8"
  std::string relation;  // "conv-to-kstate" / "stab-to-utr" / ...
  unsigned long long states = 0;
  std::string fly;       // on-the-fly verdict
  std::string expl;      // explicit verdict ("-" when not run)
  bool match = true;     // full CheckResult equality (parity rows)
  bool expected = true;  // verdict is the theoretically required one
  double fly_ms = 0;
  double expl_ms = 0;
  std::size_t peak_frames = 0;
  std::size_t closure_bytes = 0;
};

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

bool identical(const CheckResult& a, const CheckResult& b) {
  return a.holds == b.holds && a.reason == b.reason && a.witness.states == b.witness.states;
}

struct ParityJob {
  const char* relation;
  bool expect_holds;
  System c;
  System a;
  Abstraction alpha;
};

/// Runs one relation through both engines and scores the row.
Row run_parity(const std::string& family, const std::string& config, const ParityJob& job,
               const EngineOptions& eo) {
  Row row;
  row.family = family;
  row.config = config;
  row.relation = job.relation;
  row.states = job.c.space().size();

  OnTheFlyChecker fly(job.c, job.a, job.alpha, eo);
  bench::Timer tf;
  const CheckResult fr = std::string(job.relation) == "stab-to-utr"
                             ? fly.stabilizing_to()
                             : fly.convergence_refinement();
  row.fly_ms = tf.ms();
  row.fly = bench::verdict(fr);
  row.peak_frames = fly.stats().peak_dfs_frames;
  row.closure_bytes = fly.stats().closure_bytes;

  RefinementChecker ex(job.c, job.a, job.alpha, eo);
  bench::Timer te;
  const CheckResult er = std::string(job.relation) == "stab-to-utr"
                             ? ex.stabilizing_to()
                             : ex.convergence_refinement();
  row.expl_ms = te.ms();
  row.expl = bench::verdict(er);
  row.match = identical(fr, er);
  row.expected = fr.holds == job.expect_holds;
  return row;
}

/// Runs one relation through the on-the-fly engine only (headline).
Row run_headline(const std::string& config, const char* relation, bool expect_holds,
                 const System& c, const System& a, Abstraction alpha,
                 const EngineOptions& eo) {
  Row row;
  row.family = "headline";
  row.config = config;
  row.relation = relation;
  row.states = c.space().size();
  row.expl = "-";

  OnTheFlyChecker fly(c, a, std::move(alpha), eo);
  bench::Timer tf;
  const CheckResult r = std::string(relation) == "stab-to-utr" ? fly.stabilizing_to()
                                                               : fly.convergence_refinement();
  row.fly_ms = tf.ms();
  row.fly = bench::verdict(r);
  row.match = true;
  row.expected = r.holds == expect_holds;
  const OnTheFlyStats st = fly.stats();
  row.peak_frames = st.peak_dfs_frames;
  row.closure_bytes = st.closure_bytes;
  std::printf(
      "  %-14s %-46s %s in %.1f ms  (init %.1f, reach %.1f, c-scc %.1f, edge %.1f, "
      "stutter %.1f; peak DFS %zu frames, closure %zu B)\n",
      relation, (config + ", " + std::to_string(row.states) + " states:").c_str(),
      row.fly.c_str(), row.fly_ms, st.init_scan_ms, st.reach_ms, st.c_scc_ms,
      st.edge_scan_ms, st.stutter_ms, st.peak_dfs_frames, st.closure_bytes);
  if (!r.holds && !expect_holds)
    std::printf("    divergence witness: %s\n", r.witness.format_ids().c_str());
  return row;
}

void write_json(const char* path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E20 onthefly-scc-quotient\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"family\": \"" << r.family << "\", \"config\": \"" << r.config
        << "\", \"relation\": \"" << r.relation << "\", \"states\": " << r.states
        << ", \"onthefly\": \"" << r.fly << "\", \"explicit\": \"" << r.expl
        << "\", \"match\": " << (r.match ? "true" : "false")
        << ", \"expected\": " << (r.expected ? "true" : "false")
        << ", \"onthefly_ms\": " << r.fly_ms << ", \"explicit_ms\": " << r.expl_ms
        << ", \"peak_dfs_frames\": " << r.peak_frames
        << ", \"closure_bytes\": " << r.closure_bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

struct Config {
  int n, k, m;
  std::string label() const {
    return "n=" + std::to_string(n) + " K=" + std::to_string(k) + " m=" + std::to_string(m);
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"smoke"});
  const bool smoke = cli.has("smoke");
  bench::header("E20", "on-the-fly SCC-quotient checking for huge Sigma (work ring)");
  const EngineOptions eo = bench::engine_options_from_cli(cli);

  std::vector<Row> rows;

  // ---- parity + control: explicit engine as the oracle ------------
  const std::vector<Config> parity_configs =
      smoke ? std::vector<Config>{{2, 3, 2}, {3, 4, 2}}
            : std::vector<Config>{{2, 3, 2}, {3, 4, 2}, {3, 4, 4}, {4, 5, 2}};
  for (const Config& cfg : parity_configs) {
    WorkRingLayout l(cfg.n, cfg.k, cfg.m);
    KStateLayout lk(cfg.n, cfg.k);
    UtrLayout lu(cfg.n);
    rows.push_back(run_parity("parity", cfg.label(),
                              {"conv-to-kstate", true, make_work_ring(l), make_kstate(lk),
                               make_alpha_forget_work(l, lk)},
                              eo));
    rows.push_back(run_parity("parity", cfg.label(),
                              {"stab-to-utr", true, make_work_ring(l), make_utr(lu),
                               make_alpha_work_to_utr(l, lu)},
                              eo));
    rows.push_back(run_parity("control", cfg.label(),
                              {"conv-to-kstate", false, make_work_ring_looping(l),
                               make_kstate(lk), make_alpha_forget_work(l, lk)},
                              eo));
    rows.push_back(run_parity("parity", cfg.label(),
                              {"wrapped-conv", true,
                               box(make_work_ring(l), make_work_skip(l)), make_kstate(lk),
                               make_alpha_forget_work(l, lk)},
                              eo));
  }

  util::Table t({"family", "config", "relation", "states", "on-the-fly", "explicit",
                 "identical", "fly ms", "explicit ms"});
  for (const Row& r : rows)
    t.add_row({r.family, r.config, r.relation, std::to_string(r.states), r.fly, r.expl,
               r.match ? "yes" : "NO", fmt_ms(r.fly_ms), fmt_ms(r.expl_ms)});
  std::printf("%s\n", t.to_string().c_str());

  // ---- headline: 10^8 states, on-the-fly only ---------------------
  if (!smoke) {
    const Config big{4, 5, 8};  // 40^5 = 102,400,000 states
    WorkRingLayout l(big.n, big.k, big.m);
    KStateLayout lk(big.n, big.k);
    UtrLayout lu(big.n);
    std::printf("headline: WorkRing(%s) — no CSR is ever materialized\n",
                big.label().c_str());
    rows.push_back(run_headline(big.label(), "conv-to-kstate", true, make_work_ring(l),
                                make_kstate(lk), make_alpha_forget_work(l, lk), eo));
    rows.push_back(run_headline(big.label(), "stab-to-utr", true, make_work_ring(l),
                                make_utr(lu), make_alpha_work_to_utr(l, lu), eo));
    rows.push_back(run_headline(big.label(), "wrapped-conv", true,
                                box(make_work_ring(l), make_work_skip(l)), make_kstate(lk),
                                make_alpha_forget_work(l, lk), eo));
  }

  bool ok = true;
  for (const Row& r : rows) ok = ok && r.match && r.expected;
  if (!smoke) {
    unsigned long long headline_states = 0;
    for (const Row& r : rows)
      if (r.family == "headline") headline_states = r.states;
    std::printf("acceptance: %llu states (>= 1e8: %s), all verdicts as required: %s\n",
                headline_states, headline_states >= 100000000ull ? "yes" : "NO",
                ok ? "PASS" : "FAIL");
    ok = ok && headline_states >= 100000000ull;
  }

  write_json("BENCH_onthefly.json", rows);
  std::printf("wrote BENCH_onthefly.json\n");
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: an engine pair disagreed or a check decided against the theory "
                 "(see table)\n");
    return 1;
  }
  return 0;
}
