// E12 — derived figure: convergence cost vs ring size for every
// stabilizing system built in this reproduction. Exact worst case (via
// the locked-region longest-path analysis) plus simulated average under
// a random central daemon from uniformly scrambled states.

#include <cstdio>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "refinement/convergence_time.hpp"
#include "ring/btr.hpp"
#include "ring/four_state.hpp"
#include "ring/kstate.hpp"
#include "ring/three_state.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

namespace {

sim::Stats simulate(const System& sys, const StatePredicate& legit, int runs,
                    std::uint64_t seed) {
  sim::FaultInjector fi(seed);
  sim::RandomDaemon daemon(seed + 1);
  sim::Stats stats;
  StateVec s;
  for (int i = 0; i < runs; ++i) {
    fi.scramble(sys.space(), s);
    auto res = sim::run_until(sys, s, daemon, legit, {.max_steps = 100000});
    if (res.converged) stats.add(static_cast<double>(res.steps));
  }
  return stats;
}

void row(util::Table& t, const std::string& name, int n, const System& sys,
         const RefinementChecker& rc, const StatePredicate& legit, std::uint64_t seed) {
  auto ct = convergence_time(rc);
  auto st = simulate(sys, legit, 1000, seed + static_cast<std::uint64_t>(n));
  t.add_row({name, std::to_string(n),
             ct.bounded ? std::to_string(ct.worst_steps) : "unbounded",
             std::to_string(ct.locked_count) + "/" +
                 std::to_string(rc.c_graph().num_states()),
             util::format_double(st.mean(), 1), util::format_double(st.percentile(99), 0),
             util::format_double(st.max(), 0)});
}

}  // namespace

int main(int argc, char** argv) {
  header("E12", "convergence cost vs ring size (exact worst case + simulation)");
  util::Cli cli(argc, argv);
  const std::uint64_t seed = seed_from_cli(cli, 42);

  util::Table t({"system", "n", "worst case", "locked/total", "sim mean", "sim p99",
                 "sim max"});
  for (int n = 2; n <= 6; ++n) {
    BtrLayout bl(n);
    System btr = make_btr(bl);
    {
      FourStateLayout l(n);
      System d4 = make_dijkstra4(l);
      RefinementChecker rc(d4, btr, make_alpha4(l, bl));
      row(t, "Dijkstra4", n, d4, rc, l.single_token_image(), seed);
    }
    {
      ThreeStateLayout l(n);
      System d3 = make_dijkstra3(l);
      RefinementChecker rc(d3, btr, make_alpha3(l, bl));
      row(t, "Dijkstra3", n, d3, rc, l.single_token_image(), seed);
    }
    {
      ThreeStateLayout l(n);
      System c3w = box_priority(make_c3(l), box(make_w1_dprime(l), make_w2_prime3(l)));
      RefinementChecker rc(c3w, btr, make_alpha3(l, bl));
      row(t, "C3<|(W1''[]W2')", n, c3w, rc, l.single_token_image(), seed);
    }
    {
      UtrLayout ul(n);
      KStateLayout kl(n, n + 1);
      System ks = make_kstate(kl);
      RefinementChecker rc(ks, make_utr(ul), make_alpha_k(kl, ul));
      row(t, "KState(K=n+1)", n, ks, rc, kl.single_token_image(), seed);
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("measured shape: every worst case grows polynomially in n.\n"
              "Dijkstra's 4-state ring converges fastest in the worst case (the\n"
              "extra up/down bit localizes repair); Dijkstra's 3-state ring pays\n"
              "roughly 2x (about n^2 + its legit cycle), with K-state close to\n"
              "it; the paper's new 3-state system (priority-wrapped C3) sits\n"
              "between the two — its stutter-instead-of-compress dynamics\n"
              "shorten the adversary's longest schedule.\n");
  return 0;
}
