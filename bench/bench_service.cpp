// E23: the batch checking service — canonical hashing, trust-free
// certificate cache, and shard-partitioned reachability.
//
// Three legs:
//
//  1. Warm-cache repeat queries — GCL K-state instances are checked
//     cold (parse + hash + build + full check + certificate emission),
//     then re-submitted. A warm hit pays canonical hashing plus a FULL
//     certificate revalidation — never blind trust — and still has to
//     beat the cold path by >= 100x on the headline instance (asserted
//     in full mode). A third pass goes through a fresh service sharing
//     only the on-disk store, covering the cross-process reuse path.
//
//  2. Sharded reachability — the reachable-region sweep partitioned
//     across S in {1, 2, 4, 8} hash-shards, each sweep compared
//     bit-for-bit against the serial BFS. Full mode runs the
//     WorkRing(n=4, K=5, m=8) instance: 40^5 = 1.024e8 states.
//
//  3. Batch throughput — a mixed pile of graph jobs through run_batch,
//     cold then warm, with the warm pass required to revalidate every
//     certificate and reproduce every cold answer byte-for-byte.
//
// Results are also written machine-readably to BENCH_service.json in
// the working directory.
//
//   ./bench_service [--smoke] [--seed N] [--threads T]
//
// --smoke shrinks every leg for CI; the identity and revalidation
// assertions still run (the 100x floor is asserted in full mode only).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "common.hpp"
#include "refinement/random_systems.hpp"
#include "refinement/reachability.hpp"
#include "ring/work_ring.hpp"
#include "service/service.hpp"
#include "service/shard.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::service;

namespace {

// ------------------------------------------------------------- leg 1: cache

/// Dijkstra's K-state ring as GCL source, sized by (n, K). Going
/// through the GCL front end makes the cold path realistic: interpreted
/// guards during the build, canonical AST hashing for the key.
std::string kstate_gcl(int n, int k) {
  std::string s = "system kstate {\n";
  for (int j = 0; j < n; ++j)
    s += "  var c" + std::to_string(j) + " : 0.." + std::to_string(k - 1) + ";\n";
  s += "  action bottom @0 : c0 == c" + std::to_string(n - 1) + " -> c0 := (c0 + 1) % " +
       std::to_string(k) + ";\n";
  for (int j = 1; j < n; ++j)
    s += "  action up" + std::to_string(j) + " @" + std::to_string(j) + " : c" +
         std::to_string(j) + " != c" + std::to_string(j - 1) + " -> c" + std::to_string(j) +
         " := c" + std::to_string(j - 1) + ";\n";
  s += "  init : c0 == 0";
  for (int j = 1; j < n; ++j) s += " && c" + std::to_string(j) + " == 0";
  s += ";\n}\n";
  return s;
}

struct CacheRow {
  std::string instance, relation;
  StateId states = 0;
  double cold_ms = 0, warm_ms = 0, disk_ms = 0;
  bool ok = false;        // warm + disk answers byte-identical and revalidated
  bool headline = false;  // row the 100x acceptance floor applies to
  double speedup() const { return warm_ms > 0 ? cold_ms / warm_ms : 0; }
};

bool same_answer(const JobOutcome& x, const JobOutcome& y) {
  return x.result.holds == y.result.holds && x.result.reason == y.result.reason &&
         x.result.witness.states == y.result.witness.states;
}

CacheRow run_cache_leg(const std::string& label, int n, int k, Relation r,
                       const ServiceOptions& base, int warm_reps) {
  CacheRow row;
  row.instance = label;
  row.relation = std::string(to_string(r));
  const std::string src = kstate_gcl(n, k);

  ServiceOptions opts = base;
  CheckService svc(opts);
  bench::Timer cold;
  JobOutcome first = svc.run(Job::from_gcl(r, src, src));
  row.cold_ms = cold.ms();
  StateId states = 1;
  for (int j = 0; j < n; ++j) states *= static_cast<StateId>(k);
  row.states = states;

  // Warm repeats against the same service: hash + lookup + revalidate.
  bool ok = true;
  bench::Timer warm;
  for (int i = 0; i < warm_reps; ++i) {
    JobOutcome hit = svc.run(Job::from_gcl(r, src, src));
    ok = ok && hit.cache_hit && hit.revalidated && same_answer(first, hit);
  }
  row.warm_ms = warm.ms() / warm_reps;

  // Cross-process path: a fresh service sharing only the disk store.
  bench::Timer disk;
  CheckService fresh(opts);
  JobOutcome again = fresh.run(Job::from_gcl(r, src, src));
  row.disk_ms = disk.ms();
  ok = ok && again.cache_hit && again.revalidated && same_answer(first, again);
  ok = ok && first.certificate_stored;
  row.ok = ok;
  return row;
}

// ------------------------------------------------------------- leg 2: shard

struct ShardRow {
  std::string instance;
  std::size_t shards = 0;
  StateId states = 0;
  std::size_t edges = 0;
  double partition_ms = 0, sweep_ms = 0;
  bool identical = false;
};

void run_shard_leg(const std::string& label, const System& sys, StateId max_states,
                   const EngineOptions& eo, std::vector<ShardRow>& rows) {
  bench::Timer build;
  const TransitionGraph mono = TransitionGraph::build(sys, eo, max_states);
  const double build_ms = build.ms();
  const std::vector<StateId> init = sys.initial_states();
  bench::Timer serial;
  const util::DenseBitset want = reachable_from(mono, init);
  const double serial_ms = serial.ms();
  std::printf("%s: %llu states, %zu edges; monolithic build %.1f ms, serial BFS %.1f ms\n",
              label.c_str(), static_cast<unsigned long long>(mono.num_states()),
              mono.num_edges(), build_ms, serial_ms);

  for (std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ShardRow row;
    row.instance = label;
    row.shards = s;
    row.states = mono.num_states();
    row.edges = mono.num_edges();
    bench::Timer part;
    ShardedGraph sg = ShardedGraph::partition(mono, s, eo);
    row.partition_ms = part.ms();
    bench::Timer sweep;
    const util::DenseBitset got = sharded_reachable_from(sg, init, eo);
    row.sweep_ms = sweep.ms();
    row.identical = got == want;
    rows.push_back(row);
  }
}

// ------------------------------------------------------------- leg 3: batch

struct BatchRow {
  std::size_t jobs = 0;
  double cold_ms = 0, warm_ms = 0;
  bool ok = false;
  double cold_jps() const { return cold_ms > 0 ? 1000.0 * jobs / cold_ms : 0; }
  double warm_jps() const { return warm_ms > 0 ? 1000.0 * jobs / warm_ms : 0; }
};

BatchRow run_batch_leg(std::uint64_t seed, std::size_t instances, StateId n,
                       const ServiceOptions& base) {
  std::vector<Job> jobs;
  SystemSampler gen(seed);
  for (std::size_t i = 0; i < instances; ++i) {
    TransitionGraph a = gen.random_graph(n, 2.5 / static_cast<double>(n));
    TransitionGraph c = gen.drop_edges(a, 0.1);
    std::vector<StateId> init = gen.random_subset(n, 0.05, /*nonempty=*/true);
    jobs.push_back(Job::from_graphs(kAllRelations[i % 5], c, init, a, init));
  }
  BatchRow row;
  row.jobs = jobs.size();
  CheckService svc(base);
  bench::Timer cold;
  std::vector<JobOutcome> first = svc.run_batch(jobs);
  row.cold_ms = cold.ms();
  bench::Timer warm;
  std::vector<JobOutcome> second = svc.run_batch(jobs);
  row.warm_ms = warm.ms();
  bool ok = first.size() == jobs.size() && second.size() == jobs.size();
  for (std::size_t i = 0; ok && i < first.size(); ++i)
    ok = second[i].cache_hit && second[i].revalidated && same_answer(first[i], second[i]);
  row.ok = ok;
  return row;
}

// ------------------------------------------------------------------- output

void write_json(const char* path, std::uint64_t seed, bool smoke,
                const std::vector<CacheRow>& cache, const std::vector<ShardRow>& shard,
                const BatchRow& batch) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E23 batch checking service\",\n  \"seed\": " << seed
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"hardware_threads\": " << resolve_thread_count() << ",\n  \"cache\": [\n";
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const CacheRow& r = cache[i];
    out << "    {\"instance\": \"" << r.instance << "\", \"relation\": \"" << r.relation
        << "\", \"states\": " << r.states << ", \"cold_ms\": " << r.cold_ms
        << ", \"warm_ms\": " << r.warm_ms << ", \"disk_ms\": " << r.disk_ms
        << ", \"speedup\": " << r.speedup() << ", \"ok\": " << (r.ok ? "true" : "false")
        << "}" << (i + 1 < cache.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"shard\": [\n";
  for (std::size_t i = 0; i < shard.size(); ++i) {
    const ShardRow& r = shard[i];
    out << "    {\"instance\": \"" << r.instance << "\", \"shards\": " << r.shards
        << ", \"states\": " << r.states << ", \"edges\": " << r.edges
        << ", \"partition_ms\": " << r.partition_ms << ", \"sweep_ms\": " << r.sweep_ms
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < shard.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"batch\": {\"jobs\": " << batch.jobs << ", \"cold_ms\": " << batch.cold_ms
      << ", \"warm_ms\": " << batch.warm_ms << ", \"cold_jobs_per_s\": " << batch.cold_jps()
      << ", \"warm_jobs_per_s\": " << batch.warm_jps()
      << ", \"ok\": " << (batch.ok ? "true" : "false") << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"smoke"});
  const bool smoke = cli.has("smoke");
  bench::header("E23", "batch checking service: cache, shards, throughput");
  const std::uint64_t seed = bench::seed_from_cli(cli);
  EngineOptions eo = bench::engine_options_from_cli(cli);

  ServiceOptions opts;
  opts.engine = eo;
  opts.cache_dir = smoke ? "bench-service-cache-smoke" : "bench-service-cache";
  std::error_code ec;
  std::filesystem::remove_all(opts.cache_dir, ec);  // every run starts cold

  // ---- leg 1: warm-cache repeat queries ---------------------------
  std::vector<CacheRow> cache;
  const int reps = smoke ? 5 : 20;
  if (smoke) {
    cache.push_back(run_cache_leg("kstate(n=4,K=4)", 4, 4, Relation::kStabilizing, opts, reps));
    cache.push_back(run_cache_leg("kstate(n=4,K=4)", 4, 4, Relation::kConvergence, opts, reps));
  } else {
    cache.push_back(run_cache_leg("kstate(n=5,K=6)", 5, 6, Relation::kStabilizing, opts, reps));
    cache.push_back(run_cache_leg("kstate(n=6,K=7)", 6, 7, Relation::kConvergence, opts, reps));
    cache.push_back(run_cache_leg("kstate(n=6,K=7)", 6, 7, Relation::kStabilizing, opts, reps));
    cache.push_back(run_cache_leg("kstate(n=7,K=7)", 7, 7, Relation::kStabilizing, opts, reps));
    cache.back().headline = true;
  }
  util::Table t1({"instance", "relation", "states", "cold ms", "warm ms", "disk ms",
                  "speedup", "validated"});
  for (const CacheRow& r : cache)
    t1.add_row({r.instance, r.relation, std::to_string(r.states),
                util::format_double(r.cold_ms, 2), util::format_double(r.warm_ms, 3),
                util::format_double(r.disk_ms, 2), util::format_double(r.speedup(), 1),
                bench::yesno(r.ok)});
  std::printf("\nwarm-cache repeat queries (every hit certificate-revalidated):\n%s\n",
              t1.to_string().c_str());

  // ---- leg 2: sharded reachability --------------------------------
  std::vector<ShardRow> shard;
  if (smoke) {
    ring::WorkRingLayout l(2, 3, 3);  // 9^3 = 729 states
    run_shard_leg("workring(n=2,K=3,m=3)", ring::make_work_ring(l), 1ull << 20, eo, shard);
  } else {
    ring::WorkRingLayout l(4, 5, 8);  // 40^5 = 1.024e8 states
    run_shard_leg("workring(n=4,K=5,m=8)", ring::make_work_ring(l), 1ull << 27, eo, shard);
  }
  util::Table t2({"instance", "shards", "partition ms", "sweep ms", "identical"});
  for (const ShardRow& r : shard)
    t2.add_row({r.instance, std::to_string(r.shards), util::format_double(r.partition_ms, 1),
                util::format_double(r.sweep_ms, 1), bench::yesno(r.identical)});
  std::printf("sharded reachable-region sweep vs serial BFS:\n%s\n", t2.to_string().c_str());

  // ---- leg 3: batch throughput ------------------------------------
  ServiceOptions batch_opts;
  batch_opts.engine = eo;  // in-memory only: isolates executor throughput
  const BatchRow batch = run_batch_leg(seed, smoke ? 20 : 200, smoke ? 60 : 400, batch_opts);
  std::printf("batch throughput: %zu jobs, cold %.1f ms (%.0f jobs/s), warm %.1f ms "
              "(%.0f jobs/s), warm answers validated: %s\n\n",
              batch.jobs, batch.cold_ms, batch.cold_jps(), batch.warm_ms, batch.warm_jps(),
              bench::yesno(batch.ok).c_str());

  write_json("BENCH_service.json", seed, smoke, cache, shard, batch);
  std::printf("wrote BENCH_service.json\n");

  // ---- acceptance -------------------------------------------------
  bool ok = batch.ok;
  for (const CacheRow& r : cache) ok = ok && r.ok;
  for (const ShardRow& r : shard) ok = ok && r.identical;
  if (!ok) {
    std::fprintf(stderr, "FAIL: a warm answer went unvalidated or a sharded sweep "
                         "diverged from the serial BFS\n");
    return 1;
  }
  if (!smoke) {
    // The 100x floor applies to the headline stabilizing instance; the
    // smaller instances and the convergence row are reported as data
    // (convergence certificates are costlier to revalidate — per-edge
    // rho rules plus A-path witness replay — so its ratio sits lower).
    for (const CacheRow& r : cache) {
      if (!r.headline) continue;
      std::printf("acceptance: headline %s warm-cache speedup %.1fx (floor 100x): %s\n",
                  r.instance.c_str(), r.speedup(), r.speedup() >= 100.0 ? "yes" : "NO");
      if (r.speedup() < 100.0) {
        std::fprintf(stderr, "FAIL: headline warm-cache speedup below the 100x floor\n");
        return 1;
      }
    }
  }
  return 0;
}
