// E11 — the full version's K-state result, reproduced mechanically: the
// (n, K) stabilization grid for Dijkstra's K-state ring checked against
// the abstract unidirectional ring UTR through alpha_K, plus the honesty
// checks on the abstract wrapped system (DESIGN.md Section 5).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "refinement/checker.hpp"
#include "refinement/convergence_time.hpp"
#include "ring/kstate.hpp"
#include "sim/metrics.hpp"
#include "util/strings.hpp"

using namespace cref;
using namespace cref::bench;
using namespace cref::ring;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const EngineOptions eo = engine_options_from_cli(cli);
  header("E11", "K-state: stabilization grid over (n, K)");

  sim::StatsSet phases;
  const int max_n = 5, max_k = 7;
  util::Table t({"n \\ K", "2", "3", "4", "5", "6", "7"});
  for (int n = 2; n <= max_n; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    UtrLayout ul(n);
    System utr = make_utr(ul);
    for (int k = 2; k <= max_k; ++k) {
      if (static_cast<double>(k) > 60000.0 / (n + 1)) {
        row.push_back("-");
        continue;
      }
      KStateLayout kl(n, k);
      RefinementChecker rc(make_kstate(kl), utr, make_alpha_k(kl, ul));
      rc.set_engine_options(eo);
      row.push_back(rc.stabilizing_to().holds ? "YES" : "no");
      record_phases(phases, rc.phase_timings());
    }
    t.add_row(std::move(row));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("(YES = Dijkstra's K-state ring on n+1 processes is stabilizing to\n"
              " the unique circulating privilege. Measured boundary: K >= n —\n"
              " one sharper than the classical sufficient condition K >= n+1.)\n\n");
  print_phase_breakdown(phases);

  // Serial vs parallel on the largest grid cell (n=5, K=7: 7^6 states),
  // same checker instance so the one-time SCC/closure cost is excluded
  // and the verdict is asserted identical across thread counts.
  {
    const int tn = 5, tk = 7;
    UtrLayout ul(tn);
    KStateLayout kl(tn, tk);
    RefinementChecker rc(make_kstate(kl), make_utr(ul), make_alpha_k(kl, ul));
    bool serial_verdict = false;
    double serial_ms = 0;
    const std::size_t hw = resolve_thread_count();
    std::vector<std::size_t> tcounts{1, 2, 4, hw};
    std::sort(tcounts.begin(), tcounts.end());
    tcounts.erase(std::unique(tcounts.begin(), tcounts.end()), tcounts.end());
    util::Table st({"threads", "stabilizing_to wall ms", "speedup", "verdict"});
    for (std::size_t threads : tcounts) {
      EngineOptions teo = eo;
      teo.num_threads = threads;
      rc.set_engine_options(teo);
      (void)rc.stabilizing_to();  // warm shared caches
      Timer timer;
      bool holds = rc.stabilizing_to().holds;
      double ms = timer.ms();
      if (threads == 1) {
        serial_verdict = holds;
        serial_ms = ms;
      }
      st.add_row({std::to_string(threads), util::format_double(ms, 2),
                  util::format_double(serial_ms / ms, 2),
                  holds == serial_verdict ? verdict(holds) : "MISMATCH"});
    }
    std::printf("\nparallel scan scaling at (n=5, K=7), %zu edges:\n%s",
                rc.c_graph().num_edges(), st.to_string().c_str());
  }

  // Worst-case convergence in the stabilizing regime.
  util::Table ct({"n", "K", "locked states", "worst-case steps"});
  for (int n = 2; n <= 4; ++n) {
    for (int k = n; k <= n + 2; ++k) {
      UtrLayout ul(n);
      KStateLayout kl(n, k);
      RefinementChecker rc(make_kstate(kl), make_utr(ul), make_alpha_k(kl, ul));
      if (!rc.stabilizing_to().holds) continue;
      auto res = convergence_time(rc);
      ct.add_row({std::to_string(n), std::to_string(k), std::to_string(res.locked_count),
                  res.bounded ? std::to_string(res.worst_steps) : "unbounded"});
    }
  }
  std::printf("%s\n", ct.to_string().c_str());

  // Honesty checks on the abstract side (why the BTR-style derivation
  // does not transfer): the wrapped UTR is not stabilizing, and K-state
  // is not a convergence refinement of it.
  int n = 3;
  UtrLayout ul(n);
  System utr = make_utr(ul);
  System wrapped = box(utr, make_wu_create(ul), make_wu_cancel(ul));
  util::Table h({"claim (DESIGN.md Section 5)", "measured"});
  h.add_row({"UTR [] WUcreate [] WUcancel stabilizing to UTR",
             verdict(RefinementChecker(wrapped, utr).stabilizing_to())});
  KStateLayout kl(n, 4);
  h.add_row({"[KState(3,4) <~ UTR [] WU]",
             verdict(RefinementChecker(make_kstate(kl), wrapped, make_alpha_k(kl, ul))
                         .convergence_refinement())});
  h.add_row({"KState(3,4) stabilizing to UTR",
             verdict(RefinementChecker(make_kstate(kl), utr, make_alpha_k(kl, ul))
                         .stabilizing_to())});
  std::printf("%s", h.to_string().c_str());
  std::printf("\nthe derivation route of Sections 3-6 does not transfer to the\n"
              "unidirectional ring: no token-level wrapper forces merging under\n"
              "an unfair daemon. K-state's convergence lives in the VALUES (the\n"
              "fresh-value argument), below the token abstraction. We therefore\n"
              "verify the RESULT directly, as the grid above does.\n");
  return 0;
}
